//! Datacenter environment: ambient temperature and I/O load, both with a
//! diurnal cycle.
//!
//! The paper's data comes from a production datacenter with "diverse
//! workloads" (§IV-B) where temperature turned out to be the dominant
//! trigger of logical failures (§V-A). The environment model is simple but
//! carries the two signals the analysis consumes: a per-drive thermal
//! operating point (cold aisle vs hot spot) and a fluctuating load that
//! modulates error opportunities.

use crate::randutil;
use rand::Rng;

/// How the fleet's I/O intensity evolves over time.
///
/// The drive model scales its error opportunities by the instantaneous
/// load, so the load shape leaves fingerprints in the SMART rate
/// attributes. Three shapes cover the common cases; `Trace` replays any
/// recorded per-hour intensity profile cyclically.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadModel {
    /// Flat load at the given level.
    Constant(f64),
    /// The classic interactive-traffic shape: `base + amplitude ·
    /// sin(2π(h − 15)/24)`, peaking at hour 21.
    Diurnal {
        /// Mean relative load.
        base: f64,
        /// Half-amplitude of the swing.
        amplitude: f64,
    },
    /// Replays a recorded per-hour intensity trace, repeating it when the
    /// simulation outlives it.
    Trace(Vec<f64>),
}

impl LoadModel {
    /// The relative load at an absolute hour (floored at 0.05 so error
    /// processes never fully stall).
    pub fn load(&self, hour: u32) -> f64 {
        let raw = match self {
            LoadModel::Constant(level) => *level,
            LoadModel::Diurnal { base, amplitude } => {
                let phase = 2.0 * std::f64::consts::PI * ((hour % 24) as f64 - 15.0) / 24.0;
                base + amplitude * phase.sin()
            }
            LoadModel::Trace(samples) => {
                if samples.is_empty() {
                    1.0
                } else {
                    samples[hour as usize % samples.len()]
                }
            }
        };
        raw.max(0.05)
    }
}

/// Ambient datacenter conditions shared by the whole fleet.
///
/// # Example
///
/// ```
/// use dds_smartsim::Environment;
///
/// let env = Environment::default();
/// let noon = env.ambient_celsius(12);
/// let midnight = env.ambient_celsius(0);
/// assert!(noon > midnight); // diurnal swing
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Environment {
    /// Mean cold-aisle inlet temperature in °C.
    pub base_celsius: f64,
    /// Half-amplitude of the diurnal temperature swing in °C.
    pub diurnal_celsius: f64,
    /// The fleet's I/O intensity over time.
    pub load_model: LoadModel,
}

impl Environment {
    /// Nominal datacenter: 24 °C inlet with a small ±0.4 °C residual swing
    /// (CRAC-controlled cold aisle), nominal load with ±40% swing.
    pub fn new() -> Self {
        Environment {
            base_celsius: 24.0,
            diurnal_celsius: 0.4,
            load_model: LoadModel::Diurnal { base: 1.0, amplitude: 0.4 },
        }
    }

    /// Cold-aisle ambient temperature at the given absolute hour.
    ///
    /// Peaks mid-afternoon (hour 15 of each day).
    pub fn ambient_celsius(&self, hour: u32) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * ((hour % 24) as f64 - 9.0) / 24.0;
        self.base_celsius + self.diurnal_celsius * phase.sin()
    }

    /// Relative I/O load at the given absolute hour (always positive).
    pub fn load(&self, hour: u32) -> f64 {
        self.load_model.load(hour)
    }

    /// Samples a per-drive thermal offset over ambient: the rack position
    /// plus internal heating (mean +4 °C, sd 1.5 °C, floored at 0).
    pub fn sample_rack_offset<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        randutil::normal(rng, 4.0, 1.5).max(0.0)
    }
}

impl Default for Environment {
    fn default() -> Self {
        Environment::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ambient_stays_in_band() {
        let env = Environment::new();
        for h in 0..48 {
            let t = env.ambient_celsius(h);
            assert!(t >= env.base_celsius - env.diurnal_celsius - 1e-9);
            assert!(t <= env.base_celsius + env.diurnal_celsius + 1e-9);
        }
    }

    #[test]
    fn ambient_is_periodic() {
        let env = Environment::new();
        assert!((env.ambient_celsius(5) - env.ambient_celsius(5 + 24)).abs() < 1e-12);
    }

    #[test]
    fn load_is_positive_and_peaks_evening() {
        let env = Environment::new();
        let mut peak_hour = 0;
        let mut peak = f64::MIN;
        for h in 0..24 {
            let l = env.load(h);
            assert!(l > 0.0);
            if l > peak {
                peak = l;
                peak_hour = h;
            }
        }
        assert_eq!(peak_hour, 21);
    }

    #[test]
    fn constant_load_is_flat_and_floored() {
        let model = LoadModel::Constant(0.7);
        assert_eq!(model.load(0), 0.7);
        assert_eq!(model.load(999), 0.7);
        assert_eq!(LoadModel::Constant(-3.0).load(5), 0.05);
    }

    #[test]
    fn trace_load_replays_cyclically() {
        let model = LoadModel::Trace(vec![0.5, 1.5, 2.5]);
        assert_eq!(model.load(0), 0.5);
        assert_eq!(model.load(4), 1.5);
        assert_eq!(model.load(302), 2.5);
        // An empty trace degrades to nominal load.
        assert_eq!(LoadModel::Trace(vec![]).load(7), 1.0);
    }

    #[test]
    fn trace_driven_fleet_still_simulates() {
        use crate::fleet::{FleetConfig, FleetSimulator};
        let mut config =
            FleetConfig::test_scale().with_good_drives(10).with_failed_drives(5).with_seed(55);
        // A bursty weekly pattern: quiet nights, heavy weekend scrubs.
        let trace: Vec<f64> = (0..168)
            .map(|h| {
                if h % 24 < 8 {
                    0.3
                } else if h > 120 {
                    2.0
                } else {
                    1.0
                }
            })
            .collect();
        config.environment.load_model = LoadModel::Trace(trace);
        let dataset = FleetSimulator::new(config).run();
        assert_eq!(dataset.failed_drives().count(), 5);
    }

    #[test]
    fn rack_offsets_are_nonnegative_and_spread() {
        let env = Environment::new();
        let mut rng = StdRng::seed_from_u64(3);
        let offsets: Vec<f64> = (0..500).map(|_| env.sample_rack_offset(&mut rng)).collect();
        assert!(offsets.iter().all(|&o| o >= 0.0));
        let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;
        assert!((mean - 4.0).abs() < 0.5);
    }
}
