//! The three failure processes whose manifestations the paper categorizes
//! (Table II), implemented as mechanistic modulations of the drive model.
//!
//! | Mode | Paper's group | Mechanism here |
//! |------|---------------|----------------|
//! | [`FailureMode::Logical`] | Group 1 (59.6%) | firmware / file-structure corruption on a *hot* drive; SMART looks near-good until a short final window (`d ≤ 12` h) where read errors ramp quadratically |
//! | [`FailureMode::BadSector`] | Group 2 (7.6%) | pending sectors accumulate and escalate to uncorrectable errors monotonically over ~16 days (`d ≈ 380` h); media errors elevated; write-error reallocation varies per drive |
//! | [`FailureMode::HeadWear`] | Group 3 (32.8%) | an old drive's head degrades: reallocated sectors grow all profile long and storm cubically in a final `d ∈ 10..24` h window to near spare-pool exhaustion; high-fly writes elevated |
//!
//! Each process owns the *shape* knowledge (`1 − (t/d)^k` anomaly ramps) that
//! makes the Euclidean distance-to-failure curve follow the paper's
//! signature forms `s(t) = t^k/d^k − 1` for `k = 2, 1, 3` respectively.

use crate::drive::{AnomalyLevels, DriveState, HourlyStress};
use crate::randutil;
use rand::{Rng, RngExt};
use std::fmt;

/// Ground-truth failure mode of a simulated drive.
///
/// The paper had to *discover* these categories by clustering because "the
/// information of failure categories is not available" for real drives
/// (§IV-B); the simulator knows them, which lets the workspace validate the
/// unsupervised categorization against truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FailureMode {
    /// Logical/firmware failure (paper Group 1: "logical failures").
    Logical,
    /// Sector-degradation failure (paper Group 2: "bad sector failures").
    BadSector,
    /// Head-wear failure (paper Group 3: "read/write head failures").
    HeadWear,
}

impl FailureMode {
    /// All modes in the paper's group order.
    pub const ALL: [FailureMode; 3] =
        [FailureMode::Logical, FailureMode::BadSector, FailureMode::HeadWear];

    /// Fraction of failures in this mode observed by the paper (Table II).
    pub fn paper_fraction(self) -> f64 {
        match self {
            FailureMode::Logical => 0.596,
            FailureMode::BadSector => 0.076,
            FailureMode::HeadWear => 0.328,
        }
    }

    /// The paper's name for this failure type (Table II).
    pub fn type_name(self) -> &'static str {
        match self {
            FailureMode::Logical => "logical failures",
            FailureMode::BadSector => "bad sector failures",
            FailureMode::HeadWear => "read/write head failures",
        }
    }
}

impl fmt::Display for FailureMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_name())
    }
}

/// A sampled failure trajectory: mode, degradation window, anomaly
/// magnitudes and starting conditions, frozen at drive creation.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureProcess {
    mode: FailureMode,
    /// Degradation-window size in hours (the paper's `d_i`).
    window_hours: f64,
    /// Starting power-on age of the drive (hours).
    start_age_hours: f64,
    /// Extra self-heating over the drive's rack offset (°C): failing
    /// electronics run measurably hotter than their rack neighbours, which
    /// is what lets the §V-A thermal diagnosis separate dying drives from
    /// merely badly-placed ones.
    internal_heat: f64,
    /// Mode-specific anomaly magnitudes.
    params: ModeParams,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ModeParams {
    Logical {
        /// Peak RRER depression at the failure instant (health points).
        rrer_peak: f64,
        /// Peak HER depression.
        her_peak: f64,
        /// Peak SUT depression.
        sut_peak: f64,
    },
    BadSector {
        /// Uncorrectable errors accumulated by the failure instant.
        uncorrectable_final: f64,
        /// Pending sectors outstanding at the failure instant.
        pending_final: f64,
        /// Write-error reallocations by the failure instant (varies widely
        /// between drives — the paper's "varying write errors").
        reallocated_final: f64,
        /// Peak RRER health depression at the failure instant (the paper's
        /// "more media errors" for Group 2, applied deterministically so the
        /// long window stays monotone).
        rrer_peak: f64,
    },
    HeadWear {
        /// Reallocated sectors at the failure instant (near the spare pool).
        reallocated_final: f64,
        /// Reallocated sectors when the final window opens.
        reallocated_at_window: f64,
        /// Reallocated sectors at the start of the 20-day profile.
        reallocated_start: f64,
        /// Peak RRER depression inside the window (kept small: Group 3 has
        /// "close-to-good RRER" at failure, Fig. 6c).
        rrer_peak: f64,
        /// Elevated high-fly probability across the whole profile.
        high_fly_prob: f64,
    },
}

impl FailureProcess {
    /// Samples a failure trajectory for the given mode.
    ///
    /// `profile_hours` is the length of the recorded pre-failure history;
    /// the degradation window is clamped to fit inside it.
    pub fn sample<R: Rng + ?Sized>(mode: FailureMode, profile_hours: u32, rng: &mut R) -> Self {
        let max_window = (profile_hours.saturating_sub(2)).max(1) as f64;
        match mode {
            FailureMode::Logical => FailureProcess {
                mode,
                // d <= 12 for Group 1 (§IV-C); the extraction overshoots a
                // little through noise, so the generating windows sit at the
                // low end of the paper's range.
                window_hours: (rng.random_range(2..=8) as f64).min(max_window),
                start_age_hours: randutil::normal(rng, 15_000.0, 4_000.0).max(500.0),
                // Dying electronics self-heat: the paper's key Group 1
                // finding (§V-A). These drives also live in hot racks —
                // see the fleet simulator's placement policy.
                internal_heat: randutil::normal(rng, 3.5, 1.0).max(1.5),
                params: ModeParams::Logical {
                    // Small anomalies: Group 1 failure records look close to
                    // good states (Fig. 6), and the paper's Fig. 7a distance
                    // curve fluctuates on the same scale it finally rises.
                    rrer_peak: randutil::normal(rng, 8.0, 1.5).max(4.0),
                    her_peak: randutil::normal(rng, 5.0, 1.0).max(2.5),
                    sut_peak: randutil::normal(rng, 1.5, 0.4).max(0.6),
                },
            },
            FailureMode::BadSector => FailureProcess {
                mode,
                // d ~ 380 hours (15.7 days) for Group 2 (§IV-C); censored
                // profiles shrink the window to fit.
                window_hours: randutil::normal(rng, 380.0, 40.0)
                    .clamp(250.0_f64.min(max_window), max_window),
                start_age_hours: randutil::normal(rng, 12_000.0, 3_000.0).max(500.0),
                // Every failed group runs measurably hotter than the good
                // fleet (Fig. 11), so keep a positive floor: media damage
                // means retries and recovery passes, which dissipate heat
                // even in an otherwise healthy chassis.
                internal_heat: randutil::normal(rng, 1.0, 0.4).max(0.3),
                params: ModeParams::BadSector {
                    // Floor at 95: a drive that failed *from* bad sectors
                    // has by definition accumulated enough uncorrectables
                    // to push RUE health clearly below good drives
                    // (Fig. 6, Group 2), i.e. under 100 − 0.5·95 = 52.5.
                    uncorrectable_final: randutil::normal(rng, 110.0, 15.0).max(95.0),
                    pending_final: randutil::normal(rng, 35.0, 8.0).max(15.0),
                    // Uniform spread: "diverse R-RSC (write errors)".
                    reallocated_final: rng.random::<f64>() * 2_500.0,
                    rrer_peak: randutil::normal(rng, 9.0, 2.0).max(4.0),
                },
            },
            FailureMode::HeadWear => {
                let reallocated_final = 3_900.0 + rng.random::<f64>() * 150.0;
                // The final storm adds 900–1,200 sectors; earlier damage
                // accumulated gradually, so the pre-failure profile shows a
                // plateau before the terminal window.
                let reallocated_at_window =
                    reallocated_final - (900.0 + rng.random::<f64>() * 300.0);
                let reallocated_start =
                    reallocated_at_window - (100.0 + rng.random::<f64>() * 150.0);
                FailureProcess {
                    mode,
                    // d in 10..=24 for Group 3 (§IV-C).
                    window_hours: (rng.random_range(10..=24) as f64).min(max_window),
                    // Old drives: Group 3 has the most negative POH z-score
                    // (Fig. 12).
                    start_age_hours: randutil::normal(rng, 26_000.0, 4_000.0).max(8_000.0),
                    internal_heat: randutil::normal(rng, 1.2, 0.5).max(0.0),
                    params: ModeParams::HeadWear {
                        reallocated_final,
                        reallocated_at_window,
                        reallocated_start: reallocated_start.max(400.0),
                        rrer_peak: randutil::normal(rng, 6.0, 1.5).max(2.0),
                        high_fly_prob: 0.05 + rng.random::<f64>() * 0.04,
                    },
                }
            }
        }
    }

    /// The ground-truth mode.
    pub fn mode(&self) -> FailureMode {
        self.mode
    }

    /// The degradation-window size `d_i` in hours.
    pub fn window_hours(&self) -> f64 {
        self.window_hours
    }

    /// Creates the drive in the physical state this trajectory starts from;
    /// `rack_offset` is the thermal offset of the drive's slot (see
    /// [`Topology::drive_offset`](crate::topology::Topology::drive_offset)),
    /// on top of which the process adds its own self-heating.
    pub fn spawn_drive<R: Rng + ?Sized>(&self, rack_offset: f64, rng: &mut R) -> DriveState {
        let mut state =
            DriveState::new(rng, self.start_age_hours, rack_offset + self.internal_heat);
        if let ModeParams::HeadWear { reallocated_start, .. } = self.params {
            state.reallocated = state.reallocated.max(reallocated_start);
        }
        state
    }

    /// Stress and anomaly levels for the hour that is `hours_to_failure`
    /// hours before the failure event, within a profile of
    /// `profile_hours` total recorded hours.
    pub fn stress_at(
        &self,
        hours_to_failure: f64,
        profile_hours: u32,
    ) -> (HourlyStress, AnomalyLevels) {
        let mut stress = HourlyStress::baseline();
        let mut anomalies = AnomalyLevels::default();
        let d = self.window_hours;
        let t = hours_to_failure.max(0.0);
        // 1 at the failure instant, 0 at the window opening, <0 outside.
        let in_window = t <= d;
        match self.params {
            ModeParams::Logical { rrer_peak, her_peak, sut_peak } => {
                if in_window {
                    // Quadratic saturating ramp: anomaly(t) = A (1 − (t/d)²)
                    // makes the distance-to-failure curve follow t²/d² − 1.
                    let ramp = 1.0 - (t / d) * (t / d);
                    anomalies.rrer_depression = rrer_peak * ramp;
                    anomalies.her_depression = her_peak * ramp;
                    anomalies.sut_depression = sut_peak * ramp;
                    stress.media_rate *= 1.0 + 0.5 * ramp;
                }
            }
            ModeParams::BadSector {
                uncorrectable_final,
                pending_final,
                reallocated_final,
                rrer_peak,
            } => {
                if in_window {
                    // Linear accumulation: anomaly(t) = A (1 − t/d) makes the
                    // distance curve follow t/d − 1 (monotone, Fig. 7b).
                    let ramp = 1.0 - t / d;
                    anomalies.uncorrectable_target = Some(uncorrectable_final * ramp);
                    anomalies.pending_target = Some(pending_final * ramp);
                    anomalies.reallocated_target = Some(reallocated_final * ramp);
                    anomalies.rrer_depression = rrer_peak * ramp;
                } else {
                    // Before the terminal decline, the drive churns through
                    // transient unstable sectors that the background scan
                    // keeps recovering — the pending count oscillates slowly
                    // and keeps the distance curve non-monotone out there.
                    stress.pending_prob = 0.12;
                    stress.pending_burst_size = 4.0;
                }
            }
            ModeParams::HeadWear {
                reallocated_final,
                reallocated_at_window,
                reallocated_start,
                rrer_peak,
                high_fly_prob,
            } => {
                stress.high_fly_prob = high_fly_prob;
                stress.realloc_burst_prob = 0.02;
                stress.realloc_burst_size = 12.0;
                if in_window {
                    // The failing head reallocates on write errors directly;
                    // the pending churn of the pre-window phase stops.
                    stress.pending_prob = 0.001;
                    // Cubic storm: anomaly(t) = A (1 − (t/d)³) gives the
                    // t³/d³ − 1 signature of Group 3.
                    let ramp = 1.0 - (t / d).powi(3);
                    let target =
                        reallocated_at_window + (reallocated_final - reallocated_at_window) * ramp;
                    anomalies.reallocated_target = Some(target);
                    anomalies.rrer_depression = rrer_peak * ramp;
                } else {
                    // Unstable sectors come and go while the head degrades;
                    // the slowly oscillating pending count keeps the
                    // pre-window distance curve fluctuating (Fig. 7c).
                    stress.pending_prob = 0.1;
                    stress.pending_burst_size = 5.0;
                    // Pre-window growth from the start level to the
                    // window-opening level, finished by 45% of the
                    // pre-window span — the drive then plateaus until the
                    // terminal storm, so the distance curve out there is
                    // noise-dominated and non-monotone (Fig. 7c).
                    let span = (profile_hours as f64 - d).max(1.0);
                    let progress = (((profile_hours as f64 - t) / span) / 0.45).clamp(0.0, 1.0);
                    let target =
                        reallocated_start + (reallocated_at_window - reallocated_start) * progress;
                    anomalies.reallocated_target = Some(target);
                }
            }
        }
        (stress, anomalies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFA11)
    }

    #[test]
    fn paper_fractions_sum_to_one() {
        let total: f64 = FailureMode::ALL.iter().map(|m| m.paper_fraction()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_sizes_match_paper_ranges() {
        let mut r = rng();
        for _ in 0..100 {
            let logical = FailureProcess::sample(FailureMode::Logical, 480, &mut r);
            assert!((2.0..=12.0).contains(&logical.window_hours()));
            let sector = FailureProcess::sample(FailureMode::BadSector, 480, &mut r);
            assert!((250.0..=478.0).contains(&sector.window_hours()));
            let head = FailureProcess::sample(FailureMode::HeadWear, 480, &mut r);
            assert!((10.0..=24.0).contains(&head.window_hours()));
        }
    }

    #[test]
    fn window_clamped_to_short_profiles() {
        let mut r = rng();
        for mode in FailureMode::ALL {
            let p = FailureProcess::sample(mode, 30, &mut r);
            assert!(p.window_hours() <= 28.0, "{mode}: {}", p.window_hours());
        }
    }

    #[test]
    fn logical_drives_self_heat_most() {
        let mut r = rng();
        let mean_heat: f64 = (0..200)
            .map(|_| FailureProcess::sample(FailureMode::Logical, 480, &mut r).internal_heat)
            .sum::<f64>()
            / 200.0;
        let sector_heat: f64 = (0..200)
            .map(|_| FailureProcess::sample(FailureMode::BadSector, 480, &mut r).internal_heat)
            .sum::<f64>()
            / 200.0;
        assert!(mean_heat - sector_heat > 1.5, "{mean_heat} vs {sector_heat}");
    }

    #[test]
    fn head_wear_drives_are_old() {
        let mut r = rng();
        let head_age: f64 = (0..200)
            .map(|_| FailureProcess::sample(FailureMode::HeadWear, 480, &mut r).start_age_hours)
            .sum::<f64>()
            / 200.0;
        let logical_age: f64 = (0..200)
            .map(|_| FailureProcess::sample(FailureMode::Logical, 480, &mut r).start_age_hours)
            .sum::<f64>()
            / 200.0;
        assert!(head_age - logical_age > 5_000.0);
    }

    #[test]
    fn logical_anomaly_ramp_is_quadratic() {
        let mut r = rng();
        let p = FailureProcess::sample(FailureMode::Logical, 480, &mut r);
        let d = p.window_hours();
        let (_, at_failure) = p.stress_at(0.0, 480);
        let (_, at_half) = p.stress_at(d / 2.0, 480);
        let (_, outside) = p.stress_at(d + 5.0, 480);
        assert!(at_failure.rrer_depression > 0.0);
        // anomaly(d/2) = A(1 - 1/4) = 0.75 A
        assert!((at_half.rrer_depression / at_failure.rrer_depression - 0.75).abs() < 1e-9);
        assert_eq!(outside.rrer_depression, 0.0);
    }

    #[test]
    fn bad_sector_targets_grow_linearly_to_final() {
        let mut r = rng();
        let p = FailureProcess::sample(FailureMode::BadSector, 480, &mut r);
        let d = p.window_hours();
        let (_, at_failure) = p.stress_at(0.0, 480);
        let (_, at_half) = p.stress_at(d / 2.0, 480);
        let final_rue = at_failure.uncorrectable_target.unwrap();
        let half_rue = at_half.uncorrectable_target.unwrap();
        assert!((half_rue / final_rue - 0.5).abs() < 1e-9);
        assert!(final_rue >= 70.0);
    }

    #[test]
    fn head_wear_storm_reaches_near_spare_pool() {
        let mut r = rng();
        let p = FailureProcess::sample(FailureMode::HeadWear, 480, &mut r);
        let (_, at_failure) = p.stress_at(0.0, 480);
        let target = at_failure.reallocated_target.unwrap();
        assert!((3_900.0..=4_096.0).contains(&target));
        // Pre-window target grows with profile progress.
        let (_, early) = p.stress_at(470.0, 480);
        let (_, later) = p.stress_at(100.0, 480);
        assert!(later.reallocated_target.unwrap() > early.reallocated_target.unwrap());
    }

    #[test]
    fn spawned_head_wear_drive_starts_with_reallocations() {
        let mut r = rng();
        let p = FailureProcess::sample(FailureMode::HeadWear, 480, &mut r);
        let drive = p.spawn_drive(4.0, &mut r);
        assert!(drive.reallocated >= 400.0);
    }

    #[test]
    fn display_names_match_table_two() {
        assert_eq!(FailureMode::Logical.to_string(), "logical failures");
        assert_eq!(FailureMode::BadSector.to_string(), "bad sector failures");
        assert_eq!(FailureMode::HeadWear.to_string(), "read/write head failures");
    }
}
