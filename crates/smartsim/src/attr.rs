//! The twelve SMART attributes of the paper's Table I.
//!
//! The paper starts from 23 SMART attributes, filters constant ones, and
//! keeps ten normalized health values plus two raw counters whose normalized
//! forms lose accuracy (`R-RSC`, `R-CPSC`). The first ten attributes are
//! directly related to read/write operations; the last two (`POH`, `TC`)
//! are environmental.

use std::fmt;

/// Number of attributes recorded per health sample.
pub const NUM_ATTRIBUTES: usize = 12;

/// Whether an attribute reflects read/write activity or the drive's
/// operating environment (Table I's "Type" column, first half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeKind {
    /// Directly related to disk read/write operations; used for failure
    /// categorization (§IV-B).
    ReadWrite,
    /// Environmental (power-on hours, temperature); excluded from
    /// categorization but analyzed as degradation triggers (§IV-D, §V-A).
    Environmental,
}

/// Whether the recorded value is the vendor's one-byte relative health value
/// or the six-byte raw counter (Table I's "Type" column, second half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// One-byte normalized health value (higher is healthier).
    HealthValue,
    /// Six-byte raw measurement/counter from the drive.
    RawData,
}

/// One of the twelve selected SMART attributes (Table I).
///
/// The discriminant order matches the paper's table and is the column order
/// of every [`HealthRecord`](crate::HealthRecord).
///
/// # Example
///
/// ```
/// use dds_smartsim::{Attribute, AttributeKind};
///
/// assert_eq!(Attribute::ALL.len(), 12);
/// assert_eq!(Attribute::read_write().count(), 10);
/// assert_eq!(Attribute::TemperatureCelsius.kind(), AttributeKind::Environmental);
/// assert_eq!(Attribute::RawReadErrorRate.symbol(), "RRER");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Attribute {
    /// Raw Read Error Rate (health value). Media errors depress it.
    RawReadErrorRate = 0,
    /// Reallocated Sectors Count (health value).
    ReallocatedSectors = 1,
    /// Seek Error Rate (health value).
    SeekErrorRate = 2,
    /// Reported Uncorrectable Errors (health value).
    ReportedUncorrectable = 3,
    /// High Fly Writes (health value).
    HighFlyWrites = 4,
    /// Hardware ECC Recovered (health value).
    HardwareEccRecovered = 5,
    /// Current Pending Sector Count (health value).
    CurrentPendingSectors = 6,
    /// Spin Up Time (health value).
    SpinUpTime = 7,
    /// Reallocated Sectors Count (raw counter).
    RawReallocatedSectors = 8,
    /// Current Pending Sector Count (raw counter).
    RawCurrentPendingSectors = 9,
    /// Power On Hours (health value, with the 876-hour step quirk).
    PowerOnHours = 10,
    /// Temperature Celsius (health value; hotter drives score lower).
    TemperatureCelsius = 11,
}

impl Attribute {
    /// All twelve attributes in record-column order.
    pub const ALL: [Attribute; NUM_ATTRIBUTES] = [
        Attribute::RawReadErrorRate,
        Attribute::ReallocatedSectors,
        Attribute::SeekErrorRate,
        Attribute::ReportedUncorrectable,
        Attribute::HighFlyWrites,
        Attribute::HardwareEccRecovered,
        Attribute::CurrentPendingSectors,
        Attribute::SpinUpTime,
        Attribute::RawReallocatedSectors,
        Attribute::RawCurrentPendingSectors,
        Attribute::PowerOnHours,
        Attribute::TemperatureCelsius,
    ];

    /// The column index of this attribute in a health record.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Looks an attribute up by its record-column index.
    pub fn from_index(index: usize) -> Option<Attribute> {
        Attribute::ALL.get(index).copied()
    }

    /// Read/write vs environmental classification (Table I).
    pub fn kind(self) -> AttributeKind {
        match self {
            Attribute::PowerOnHours | Attribute::TemperatureCelsius => AttributeKind::Environmental,
            _ => AttributeKind::ReadWrite,
        }
    }

    /// Health-value vs raw-counter classification (Table I).
    pub fn value_kind(self) -> ValueKind {
        match self {
            Attribute::RawReallocatedSectors | Attribute::RawCurrentPendingSectors => {
                ValueKind::RawData
            }
            _ => ValueKind::HealthValue,
        }
    }

    /// The short symbol used throughout the paper (Table I).
    pub fn symbol(self) -> &'static str {
        match self {
            Attribute::RawReadErrorRate => "RRER",
            Attribute::ReallocatedSectors => "RSC",
            Attribute::SeekErrorRate => "SER",
            Attribute::ReportedUncorrectable => "RUE",
            Attribute::HighFlyWrites => "HFW",
            Attribute::HardwareEccRecovered => "HER",
            Attribute::CurrentPendingSectors => "CPSC",
            Attribute::SpinUpTime => "SUT",
            Attribute::RawReallocatedSectors => "R-RSC",
            Attribute::RawCurrentPendingSectors => "R-CPSC",
            Attribute::PowerOnHours => "POH",
            Attribute::TemperatureCelsius => "TC",
        }
    }

    /// The full attribute name (Table I).
    pub fn name(self) -> &'static str {
        match self {
            Attribute::RawReadErrorRate => "Raw Read Error Rate",
            Attribute::ReallocatedSectors => "Reallocated Sectors Count",
            Attribute::SeekErrorRate => "Seek Error Rate",
            Attribute::ReportedUncorrectable => "Reported Uncorrectable Errors",
            Attribute::HighFlyWrites => "High Fly Writes",
            Attribute::HardwareEccRecovered => "Hardware ECC Recovered",
            Attribute::CurrentPendingSectors => "Current Pending Sector Count",
            Attribute::SpinUpTime => "Spin Up Time",
            Attribute::RawReallocatedSectors => "Reallocated Sectors Count (raw)",
            Attribute::RawCurrentPendingSectors => "Current Pending Sector Count (raw)",
            Attribute::PowerOnHours => "Power On Hours",
            Attribute::TemperatureCelsius => "Temperature Celsius",
        }
    }

    /// Iterator over the ten read/write attributes, in column order.
    ///
    /// These are the features of the 30-dimensional failure records used by
    /// the categorization step (§IV-B).
    pub fn read_write() -> impl Iterator<Item = Attribute> {
        Attribute::ALL.into_iter().filter(|a| a.kind() == AttributeKind::ReadWrite)
    }

    /// Iterator over the two environmental attributes.
    pub fn environmental() -> impl Iterator<Item = Attribute> {
        Attribute::ALL.into_iter().filter(|a| a.kind() == AttributeKind::Environmental)
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_roundtrip() {
        for (i, attr) in Attribute::ALL.iter().enumerate() {
            assert_eq!(attr.index(), i);
            assert_eq!(Attribute::from_index(i), Some(*attr));
        }
        assert_eq!(Attribute::from_index(12), None);
    }

    #[test]
    fn ten_read_write_two_environmental() {
        assert_eq!(Attribute::read_write().count(), 10);
        assert_eq!(Attribute::environmental().count(), 2);
        assert_eq!(Attribute::read_write().count() + Attribute::environmental().count(), 12);
    }

    #[test]
    fn raw_attributes_match_table_one() {
        let raw: Vec<Attribute> =
            Attribute::ALL.into_iter().filter(|a| a.value_kind() == ValueKind::RawData).collect();
        assert_eq!(
            raw,
            vec![Attribute::RawReallocatedSectors, Attribute::RawCurrentPendingSectors]
        );
    }

    #[test]
    fn symbols_are_unique() {
        let mut symbols: Vec<&str> = Attribute::ALL.iter().map(|a| a.symbol()).collect();
        symbols.sort_unstable();
        symbols.dedup();
        assert_eq!(symbols.len(), 12);
    }

    #[test]
    fn display_uses_symbol() {
        assert_eq!(Attribute::PowerOnHours.to_string(), "POH");
    }

    #[test]
    fn names_are_nonempty() {
        for attr in Attribute::ALL {
            assert!(!attr.name().is_empty());
        }
    }
}
