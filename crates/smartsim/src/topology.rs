//! Rack topology: where a drive sits determines how hot it runs.
//!
//! §V-A of the paper recommends rack-level countermeasures (temperature
//! control knobs, thermal-aware scheduling) because logical failures
//! concentrate in hot drives. The simulator makes that causal: racks have
//! thermal offsets, a few of them are *hot spots* (blocked airflow, failed
//! CRAC zones), and heat-triggered logical failures arise preferentially
//! in those racks. The `ext_thermal_zones` experiment then recovers the
//! rack attribution from the telemetry alone.

use crate::randutil;
use rand::{Rng, RngExt};
use std::fmt;

/// Identifier of a rack within the datacenter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId(pub u16);

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack#{}", self.0)
    }
}

/// One rack's thermal character.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rack {
    /// The rack id.
    pub id: RackId,
    /// Thermal offset over the cold-aisle ambient, in °C.
    pub thermal_offset: f64,
    /// Whether this rack is a designated hot spot.
    pub hot: bool,
}

/// The datacenter's rack layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    racks: Vec<Rack>,
}

impl Topology {
    /// Generates a topology with `racks` racks of which the first
    /// `hot_racks` are hot spots: normal racks sit ~4 ± 1 °C over ambient,
    /// hot racks an extra ~7 ± 1 °C.
    ///
    /// # Panics
    ///
    /// Panics when `racks` is zero or `hot_racks > racks`.
    pub fn generate<R: Rng + ?Sized>(racks: u16, hot_racks: u16, rng: &mut R) -> Self {
        assert!(racks > 0, "topology needs at least one rack");
        assert!(hot_racks <= racks, "cannot have more hot racks than racks");
        let racks = (0..racks)
            .map(|i| {
                let hot = i < hot_racks;
                let base = randutil::normal(rng, 4.0, 1.0).max(0.5);
                let extra = if hot { randutil::normal(rng, 7.0, 1.0).max(4.0) } else { 0.0 };
                Rack { id: RackId(i), thermal_offset: base + extra, hot }
            })
            .collect();
        Topology { racks }
    }

    /// All racks.
    pub fn racks(&self) -> &[Rack] {
        &self.racks
    }

    /// Number of racks.
    pub fn len(&self) -> usize {
        self.racks.len()
    }

    /// Whether the topology has no racks (never after `generate`).
    pub fn is_empty(&self) -> bool {
        self.racks.is_empty()
    }

    /// Looks a rack up by id.
    pub fn rack(&self, id: RackId) -> Option<&Rack> {
        self.racks.get(id.0 as usize)
    }

    /// Samples a uniformly random rack.
    pub fn any_rack<R: Rng + ?Sized>(&self, rng: &mut R) -> &Rack {
        &self.racks[rng.random_range(0..self.racks.len())]
    }

    /// Samples a random *hot* rack, falling back to any rack when no hot
    /// racks exist.
    pub fn hot_rack<R: Rng + ?Sized>(&self, rng: &mut R) -> &Rack {
        let hot: Vec<&Rack> = self.racks.iter().filter(|r| r.hot).collect();
        if hot.is_empty() {
            self.any_rack(rng)
        } else {
            hot[rng.random_range(0..hot.len())]
        }
    }

    /// The per-drive thermal offset for a drive slotted into `rack`:
    /// the rack offset plus slot-level jitter.
    pub fn drive_offset<R: Rng + ?Sized>(&self, rack: &Rack, rng: &mut R) -> f64 {
        (rack.thermal_offset + randutil::normal(rng, 0.0, 0.5)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x7074)
    }

    #[test]
    fn hot_racks_run_hotter() {
        let mut r = rng();
        let topo = Topology::generate(24, 3, &mut r);
        assert_eq!(topo.len(), 24);
        let hot_mean: f64 =
            topo.racks().iter().filter(|k| k.hot).map(|k| k.thermal_offset).sum::<f64>() / 3.0;
        let cool: Vec<f64> =
            topo.racks().iter().filter(|k| !k.hot).map(|k| k.thermal_offset).collect();
        let cool_mean: f64 = cool.iter().sum::<f64>() / cool.len() as f64;
        assert!(hot_mean - cool_mean > 4.0, "hot {hot_mean} vs cool {cool_mean}");
    }

    #[test]
    fn hot_rack_sampling_only_returns_hot() {
        let mut r = rng();
        let topo = Topology::generate(10, 2, &mut r);
        for _ in 0..50 {
            assert!(topo.hot_rack(&mut r).hot);
        }
    }

    #[test]
    fn hot_rack_fallback_without_hot_racks() {
        let mut r = rng();
        let topo = Topology::generate(5, 0, &mut r);
        // Must not panic; returns some rack.
        let rack = topo.hot_rack(&mut r);
        assert!(!rack.hot);
    }

    #[test]
    fn lookup_and_display() {
        let mut r = rng();
        let topo = Topology::generate(4, 1, &mut r);
        assert!(topo.rack(RackId(3)).is_some());
        assert!(topo.rack(RackId(4)).is_none());
        assert_eq!(RackId(2).to_string(), "rack#2");
        assert!(!topo.is_empty());
    }

    #[test]
    fn drive_offsets_cluster_around_rack_offset() {
        let mut r = rng();
        let topo = Topology::generate(8, 0, &mut r);
        let rack = topo.racks()[0];
        let offsets: Vec<f64> = (0..200).map(|_| topo.drive_offset(&rack, &mut r)).collect();
        let mean: f64 = offsets.iter().sum::<f64>() / offsets.len() as f64;
        assert!((mean - rack.thermal_offset).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn zero_racks_panics() {
        let _ = Topology::generate(0, 0, &mut rng());
    }
}
