//! Fleet configuration and the simulator that produces a [`Dataset`].
//!
//! The defaults follow §III of the paper: an eight-week (1,344-hour)
//! collection period, 480-hour retention for failed drives, 168-hour
//! retention for good drives, 433 failed / 22,962 good drives at paper
//! scale, and the Fig. 1 censoring profile (51.3% of failed drives have the
//! full 20-day history, 78.5% have more than 10 days).

use crate::dataset::{Dataset, DriveId, DriveLabel, DriveProfile, HealthRecord};
use crate::drive::{AnomalyLevels, DriveState, HourlyStress};
use crate::environment::Environment;
use crate::failure::{FailureMode, FailureProcess};
use crate::randutil;
use crate::topology::Topology;
use dds_stats::par::{par_generate, stream_seed, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Configuration of a simulated fleet.
///
/// Use one of the scale constructors and the `with_` builder methods:
///
/// ```
/// use dds_smartsim::FleetConfig;
///
/// let config = FleetConfig::test_scale().with_seed(42).with_failed_drives(50);
/// assert_eq!(config.failed_drives, 50);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of good drives to simulate.
    pub good_drives: u32,
    /// Number of failed drives to simulate.
    pub failed_drives: u32,
    /// Length of the collection period in hours (paper: 8 weeks = 1,344).
    pub collection_hours: u32,
    /// Maximum retained pre-failure history in hours (paper: 480).
    pub failed_retention_hours: u32,
    /// Maximum retained history for good drives in hours (paper: 168).
    pub good_retention_hours: u32,
    /// Fraction of failed drives with the full retention window
    /// (paper Fig. 1: 51.3%).
    pub full_profile_fraction: f64,
    /// Fractions of failures per mode, in [`FailureMode::ALL`] order
    /// (paper Table II: 59.6% / 7.6% / 32.8%).
    pub mode_fractions: [f64; 3],
    /// RNG seed; the same seed reproduces the same dataset exactly.
    pub seed: u64,
    /// Shared datacenter environment.
    pub environment: Environment,
    /// Number of racks in the topology.
    pub racks: u16,
    /// Number of hot-spot racks (heat-triggered logical failures arise
    /// there preferentially, §V-A).
    pub hot_racks: u16,
    /// Parallelism of fleet generation. Every drive draws from its own
    /// seed-derived RNG stream, so the dataset is identical in every mode.
    pub parallelism: Parallelism,
}

impl FleetConfig {
    /// The paper's full scale: 22,962 good + 433 failed drives
    /// (≈ 4.0 M records; takes a few minutes and ~0.5 GB).
    pub fn paper_scale() -> Self {
        FleetConfig { good_drives: 22_962, failed_drives: 433, ..FleetConfig::bench_scale() }
    }

    /// Benchmark scale: the full 433 failed drives (all failure-side
    /// statistics match the paper) over a reduced good population of 4,000
    /// drives (good-side aggregates keep their means; only `n_g` shrinks).
    pub fn bench_scale() -> Self {
        FleetConfig {
            good_drives: 4_000,
            failed_drives: 433,
            collection_hours: 1_344,
            failed_retention_hours: 480,
            good_retention_hours: 168,
            full_profile_fraction: 0.513,
            mode_fractions: [
                FailureMode::Logical.paper_fraction(),
                FailureMode::BadSector.paper_fraction(),
                FailureMode::HeadWear.paper_fraction(),
            ],
            seed: 0x1155_2015,
            environment: Environment::new(),
            racks: 24,
            hot_racks: 3,
            parallelism: Parallelism::Auto,
        }
    }

    /// Tiny scale for unit tests: 150 good + 60 failed drives.
    pub fn test_scale() -> Self {
        FleetConfig { good_drives: 150, failed_drives: 60, ..FleetConfig::bench_scale() }
    }

    /// A consumer-grade fleet (the paper's §VI future work): a hotter,
    /// less controlled environment, a higher replacement rate (~3%) and a
    /// failure mix that tilts toward mechanical wear — consumer drives see
    /// more power cycles and rougher handling than enterprise drives.
    pub fn consumer_scale() -> Self {
        let mut environment = Environment::new();
        environment.base_celsius = 29.0;
        environment.diurnal_celsius = 1.5;
        FleetConfig {
            good_drives: 2_900,
            failed_drives: 90,
            mode_fractions: [0.35, 0.25, 0.40],
            environment,
            ..FleetConfig::bench_scale()
        }
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of good drives.
    #[must_use]
    pub fn with_good_drives(mut self, n: u32) -> Self {
        self.good_drives = n;
        self
    }

    /// Sets the number of failed drives.
    #[must_use]
    pub fn with_failed_drives(mut self, n: u32) -> Self {
        self.failed_drives = n;
        self
    }

    /// Sets the parallelism mode for fleet generation.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the failure-mode mix (will be renormalized to sum to 1).
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or all are zero.
    #[must_use]
    pub fn with_mode_fractions(mut self, fractions: [f64; 3]) -> Self {
        let sum: f64 = fractions.iter().sum();
        assert!(
            fractions.iter().all(|&f| f >= 0.0) && sum > 0.0,
            "mode fractions must be non-negative and not all zero"
        );
        self.mode_fractions = [fractions[0] / sum, fractions[1] / sum, fractions[2] / sum];
        self
    }

    /// Deterministic per-mode failure counts (largest-remainder rounding so
    /// the counts always sum to `failed_drives`).
    pub fn mode_counts(&self) -> [u32; 3] {
        let n = self.failed_drives as f64;
        let ideal: Vec<f64> = self.mode_fractions.iter().map(|f| f * n).collect();
        let mut counts: Vec<u32> = ideal.iter().map(|&x| x.floor() as u32).collect();
        let mut leftover = self.failed_drives - counts.iter().sum::<u32>();
        // Assign leftovers to the largest fractional remainders.
        let mut order: Vec<usize> = (0..3).collect();
        order.sort_by(|&a, &b| {
            let ra = ideal[a] - ideal[a].floor();
            let rb = ideal[b] - ideal[b].floor();
            rb.partial_cmp(&ra).expect("finite remainders")
        });
        for &i in &order {
            if leftover == 0 {
                break;
            }
            counts[i] += 1;
            leftover -= 1;
        }
        [counts[0], counts[1], counts[2]]
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::bench_scale()
    }
}

/// Simulates a fleet under a [`FleetConfig`] and produces a [`Dataset`].
#[derive(Debug, Clone)]
pub struct FleetSimulator {
    config: FleetConfig,
}

struct Placement<'a> {
    topology: &'a Topology,
}

impl Placement<'_> {
    /// Picks a rack for a drive: heat-triggered logical failures arise in
    /// hot racks, everything else is placed uniformly.
    fn place<R: rand::RngExt + ?Sized>(
        &self,
        mode: Option<FailureMode>,
        rng: &mut R,
    ) -> (crate::topology::RackId, f64) {
        let rack = match mode {
            Some(FailureMode::Logical) => self.topology.hot_rack(rng),
            _ => self.topology.any_rack(rng),
        };
        (rack.id, self.topology.drive_offset(rack, rng))
    }
}

impl FleetSimulator {
    /// Creates a simulator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no drives at all or zero-length
    /// retention windows.
    pub fn new(config: FleetConfig) -> Self {
        assert!(
            config.good_drives + config.failed_drives > 0,
            "fleet must contain at least one drive"
        );
        assert!(config.failed_retention_hours >= 8, "failed retention must be at least 8 hours");
        assert!(config.good_retention_hours >= 8, "good retention must be at least 8 hours");
        assert!(
            config.collection_hours >= config.failed_retention_hours,
            "collection period must cover the failed retention window"
        );
        FleetSimulator { config }
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the simulation, returning the assembled dataset.
    ///
    /// Deterministic for a fixed configuration (including seed), and
    /// independent of [`FleetConfig::parallelism`]: the master seed feeds
    /// only topology generation, while every drive draws from its own
    /// [`stream_seed`]-derived generator, so drives can be simulated in
    /// any order — or concurrently — without changing a single record.
    pub fn run(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let topology =
            Topology::generate(self.config.racks.max(1), self.config.hot_racks, &mut rng);
        let placement = Placement { topology: &topology };

        // Drive index blocks: one block per failure mode, then good drives;
        // drive `i` gets `DriveId(i)` so IDs match the sequential layout.
        let counts = self.config.mode_counts();
        let total = (self.config.good_drives + self.config.failed_drives) as usize;
        let mode_of = |i: usize| -> Option<FailureMode> {
            let mut cursor = 0usize;
            for (mode, &count) in FailureMode::ALL.iter().zip(&counts) {
                cursor += count as usize;
                if i < cursor {
                    return Some(*mode);
                }
            }
            None
        };

        let drives = par_generate(self.config.parallelism, total, |i| {
            let mut rng = StdRng::seed_from_u64(stream_seed(self.config.seed, i as u64));
            let id = DriveId(i as u32);
            match mode_of(i) {
                Some(mode) => self.simulate_failed(mode, id, &placement, &mut rng),
                None => self.simulate_good(id, &placement, &mut rng),
            }
        });

        Dataset::new(drives).expect("simulated fleet is non-empty")
    }

    /// Samples a censored profile length for a failed drive (Fig. 1).
    fn sample_failed_profile_hours<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let max = self.config.failed_retention_hours;
        if randutil::bernoulli(rng, self.config.full_profile_fraction) {
            return max;
        }
        // Truncated drives: the drive failed before accumulating the full
        // window since collection began. Mild skew toward longer profiles
        // reproduces Fig. 1's 78.5% ≥ 10 days.
        let u: f64 = rng.random::<f64>();
        let span = (max - 24) as f64;
        24 + (u.powf(0.8) * span) as u32
    }

    fn simulate_failed(
        &self,
        mode: FailureMode,
        id: DriveId,
        placement: &Placement<'_>,
        rng: &mut StdRng,
    ) -> DriveProfile {
        let hours = self.sample_failed_profile_hours(rng);
        let process = FailureProcess::sample(mode, hours, rng);
        let (rack, rack_offset) = placement.place(Some(mode), rng);
        let mut state = process.spawn_drive(rack_offset, rng);
        // Place the failure somewhere in the collection period after the
        // profile window.
        let fail_hour = rng.random_range(hours..=self.config.collection_hours.max(hours + 1));
        let start_hour = fail_hour - hours;
        let mut records = Vec::with_capacity(hours as usize);
        for h in 0..hours {
            let hours_to_failure = (hours - 1 - h) as f64;
            let (stress, anomalies) = process.stress_at(hours_to_failure, hours);
            let values =
                state.step(rng, &self.config.environment, start_hour + h, &stress, &anomalies);
            records.push(HealthRecord { hour: start_hour + h, values });
        }
        DriveProfile::new(id, DriveLabel::Failed(mode), records).with_rack(rack)
    }

    fn simulate_good(
        &self,
        id: DriveId,
        placement: &Placement<'_>,
        rng: &mut StdRng,
    ) -> DriveProfile {
        // A small share of good drives has shorter histories (added or
        // decommissioned mid-collection).
        let hours = if randutil::bernoulli(rng, 0.95) {
            self.config.good_retention_hours
        } else {
            rng.random_range(24..=self.config.good_retention_hours)
        };
        let age = randutil::normal(rng, 10_000.0, 4_000.0).max(200.0);
        let (rack, offset) = placement.place(None, rng);
        let mut state = DriveState::new(rng, age, offset);
        let start_hour =
            rng.random_range(0..=(self.config.collection_hours.saturating_sub(hours)).max(1));
        let stress = HourlyStress::baseline();
        let anomalies = AnomalyLevels::default();
        let mut records = Vec::with_capacity(hours as usize);
        for h in 0..hours {
            let values =
                state.step(rng, &self.config.environment, start_hour + h, &stress, &anomalies);
            records.push(HealthRecord { hour: start_hour + h, values });
        }
        DriveProfile::new(id, DriveLabel::Good, records).with_rack(rack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;

    fn small_dataset() -> Dataset {
        FleetSimulator::new(FleetConfig::test_scale().with_seed(99)).run()
    }

    #[test]
    fn counts_match_config() {
        let ds = small_dataset();
        assert_eq!(ds.failed_drives().count(), 60);
        assert_eq!(ds.good_drives().count(), 150);
    }

    #[test]
    fn mode_counts_sum_and_follow_fractions() {
        let config = FleetConfig::bench_scale();
        let counts = config.mode_counts();
        assert_eq!(counts.iter().sum::<u32>(), 433);
        // Paper: 258 / 33 / 142.
        assert_eq!(counts, [258, 33, 142]);
    }

    #[test]
    fn mode_fractions_renormalize() {
        let config = FleetConfig::test_scale().with_mode_fractions([2.0, 1.0, 1.0]);
        let total: f64 = config.mode_fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((config.mode_fractions[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mode_fraction_panics() {
        let _ = FleetConfig::test_scale().with_mode_fractions([-1.0, 1.0, 1.0]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = FleetSimulator::new(FleetConfig::test_scale().with_seed(5)).run();
        let b = FleetSimulator::new(FleetConfig::test_scale().with_seed(5)).run();
        assert_eq!(a.num_records(), b.num_records());
        let ra = &a.drives()[0].records()[10];
        let rb = &b.drives()[0].records()[10];
        assert_eq!(ra.values, rb.values);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FleetSimulator::new(FleetConfig::test_scale().with_seed(5)).run();
        let b = FleetSimulator::new(FleetConfig::test_scale().with_seed(6)).run();
        let ra = &a.drives()[0].records()[10];
        let rb = &b.drives()[0].records()[10];
        assert_ne!(ra.values, rb.values);
    }

    #[test]
    fn failed_profiles_are_censored_within_bounds() {
        let ds = small_dataset();
        for drive in ds.failed_drives() {
            let len = drive.profile_hours();
            assert!(len >= 24, "profile too short: {len}");
            assert!(len <= 480);
        }
        // At least some drives have the full window and some are censored.
        let full = ds.failed_drives().filter(|d| d.profile_hours() == 480).count();
        assert!(full > 10);
        assert!(full < 60);
    }

    #[test]
    fn good_profiles_capped_at_retention() {
        let ds = small_dataset();
        for drive in ds.good_drives() {
            assert!(drive.profile_hours() <= 168);
            assert!(drive.profile_hours() >= 24);
        }
    }

    #[test]
    fn head_wear_failures_end_with_high_reallocation() {
        let ds = small_dataset();
        for drive in ds.failed_drives() {
            if drive.label().failure_mode() == Some(FailureMode::HeadWear) {
                let last = drive.failure_record().unwrap();
                assert!(
                    last.value(Attribute::RawReallocatedSectors) >= 3_800.0,
                    "head-wear failure should exhaust spares, got {}",
                    last.value(Attribute::RawReallocatedSectors)
                );
            }
        }
    }

    #[test]
    fn bad_sector_failures_end_with_low_rue_health() {
        let ds = small_dataset();
        let mut seen = 0;
        for drive in ds.failed_drives() {
            if drive.label().failure_mode() == Some(FailureMode::BadSector) {
                seen += 1;
                let last = drive.failure_record().unwrap();
                assert!(
                    last.value(Attribute::ReportedUncorrectable) < 55.0,
                    "bad-sector failure should report many uncorrectables, got {}",
                    last.value(Attribute::ReportedUncorrectable)
                );
            }
        }
        assert!(seen >= 3, "test fleet should contain bad-sector failures");
    }

    #[test]
    fn logical_failures_look_near_good_but_hot() {
        let ds = small_dataset();
        // Good-drive averages for comparison.
        let good_tc: f64 = {
            let vals: Vec<f64> = ds
                .good_drives()
                .flat_map(|d| d.records().iter().map(|r| r.value(Attribute::TemperatureCelsius)))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        for drive in ds.failed_drives() {
            if drive.label().failure_mode() == Some(FailureMode::Logical) {
                let last = drive.failure_record().unwrap();
                // Counters look near-good.
                assert!(last.value(Attribute::ReportedUncorrectable) > 90.0);
                assert!(last.value(Attribute::RawReallocatedSectors) < 300.0);
                // But the drive runs hotter than the good fleet on average.
                let tc_mean = {
                    let s = drive.series(Attribute::TemperatureCelsius);
                    s.iter().sum::<f64>() / s.len() as f64
                };
                assert!(good_tc - tc_mean > 2.0, "logical drives must run hot");
            }
        }
    }

    #[test]
    fn every_drive_has_a_rack_and_logical_failures_share_few() {
        let ds = small_dataset();
        assert!(ds.drives().iter().all(|d| d.rack().is_some()));
        let logical_racks: std::collections::BTreeSet<_> = ds
            .failed_drives()
            .filter(|d| d.label().failure_mode() == Some(FailureMode::Logical))
            .filter_map(|d| d.rack())
            .collect();
        // Heat-triggered failures concentrate in the hot racks.
        assert!(
            logical_racks.len() <= FleetConfig::test_scale().hot_racks as usize,
            "logical failures spread over {logical_racks:?}"
        );
        // Other modes spread over many racks.
        let head_racks: std::collections::BTreeSet<_> = ds
            .failed_drives()
            .filter(|d| d.label().failure_mode() == Some(FailureMode::HeadWear))
            .filter_map(|d| d.rack())
            .collect();
        assert!(head_racks.len() > 5, "head failures in {head_racks:?}");
    }

    #[test]
    #[should_panic(expected = "at least one drive")]
    fn empty_fleet_panics() {
        let config = FleetConfig::test_scale().with_good_drives(0).with_failed_drives(0);
        let _ = FleetSimulator::new(config);
    }
}
