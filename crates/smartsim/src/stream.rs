//! Streaming ingest sources: hour-ordered record iteration over a
//! simulated fleet, and an endless epoch generator for serving mode.
//!
//! The batch [`Dataset`] hands out whole per-drive profiles, which is the
//! right shape for training but not for a live monitor: a datacenter
//! collector emits records in *time* order, interleaving every drive at
//! each collection hour. [`hour_ordered`] re-serializes a dataset into
//! that order deterministically (sorted by `(hour, drive_id)`), and
//! [`StreamingFleet`] chains endless simulated epochs of it — the ingest
//! source behind `dds serve`.

use crate::dataset::{Dataset, DriveId, HealthRecord};
use crate::fleet::{FleetConfig, FleetSimulator};
use std::fmt;

/// A transformation applied to each epoch's hour-ordered record stream
/// before it is handed to consumers — the hook fault-injection layers use
/// to corrupt a live stream. The first argument is the epoch index the
/// records belong to (0-based).
pub type RecordStage =
    Box<dyn FnMut(u64, Vec<(DriveId, HealthRecord)>) -> Vec<(DriveId, HealthRecord)> + Send>;

/// Flattens a dataset into `(drive, record)` pairs sorted by
/// `(hour, drive_id)` — the deterministic time-interleaved order a live
/// collector would deliver them in.
pub fn hour_ordered(dataset: &Dataset) -> Vec<(DriveId, HealthRecord)> {
    let mut records: Vec<(DriveId, HealthRecord)> = dataset
        .drives()
        .iter()
        .flat_map(|drive| drive.records().iter().map(|r| (drive.id(), r.clone())))
        .collect();
    records.sort_by_key(|(drive, record)| (record.hour, drive.0));
    records
}

/// Tiles an [`hour_ordered`] stream `copies`-fold by cloning every record
/// onto `copies` disjoint drive-id ranges — the way the ingest benchmark
/// synthesizes a million-drive stream without simulating a million drives.
///
/// Copy `c` of drive `d` becomes drive `d + c × stride`, where `stride`
/// is one past the stream's highest drive id, so copies never collide and
/// the output stays in `(hour, drive_id)` order (each hour run repeats
/// once per copy, at strictly increasing id ranges). The record payloads
/// are bit-identical across copies, which keeps the tiled stream as
/// deterministic as its source.
///
/// # Example
///
/// ```
/// use dds_smartsim::stream::{hour_ordered, tile_records};
/// use dds_smartsim::{FleetConfig, FleetSimulator};
///
/// let fleet = FleetSimulator::new(FleetConfig::test_scale().with_seed(7)).run();
/// let base = hour_ordered(&fleet);
/// let tiled = tile_records(&base, 3);
/// assert_eq!(tiled.len(), base.len() * 3);
/// // Still hour-ordered: hours never decrease, ids ascend within an hour.
/// assert!(tiled.windows(2).all(|w| (w[0].1.hour, w[0].0 .0) <= (w[1].1.hour, w[1].0 .0)));
/// ```
pub fn tile_records(
    records: &[(DriveId, HealthRecord)],
    copies: u32,
) -> Vec<(DriveId, HealthRecord)> {
    if copies <= 1 || records.is_empty() {
        return records.to_vec();
    }
    let stride = records.iter().map(|(drive, _)| drive.0).max().expect("non-empty") + 1;
    let mut tiled = Vec::with_capacity(records.len() * copies as usize);
    let mut run_start = 0;
    while run_start < records.len() {
        let hour = records[run_start].1.hour;
        let run_end =
            run_start + records[run_start..].iter().take_while(|(_, r)| r.hour == hour).count();
        for copy in 0..copies {
            let offset = copy * stride;
            for (drive, record) in &records[run_start..run_end] {
                tiled.push((DriveId(drive.0 + offset), record.clone()));
            }
        }
        run_start = run_end;
    }
    tiled
}

/// An endless sequence of simulated fleet epochs for long-lived serving.
///
/// Epoch `k` runs the configured fleet with seed `base_seed + k`, so the
/// stream never repeats an epoch yet is fully reproducible from the
/// config. Each epoch's records come out in [`hour_ordered`] order.
///
/// # Example
///
/// ```
/// use dds_smartsim::{FleetConfig, StreamingFleet};
///
/// let mut stream = StreamingFleet::new(FleetConfig::test_scale().with_seed(7));
/// let first = stream.next_epoch();
/// let records = dds_smartsim::stream::hour_ordered(&first);
/// assert!(!records.is_empty());
/// // Hours never decrease within an epoch.
/// assert!(records.windows(2).all(|w| w[0].1.hour <= w[1].1.hour));
/// ```
pub struct StreamingFleet {
    config: FleetConfig,
    epoch: u64,
    stage: Option<RecordStage>,
}

impl fmt::Debug for StreamingFleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamingFleet")
            .field("config", &self.config)
            .field("epoch", &self.epoch)
            .field("stage", &self.stage.as_ref().map(|_| "<record stage>"))
            .finish()
    }
}

impl StreamingFleet {
    /// Creates a stream over the given fleet shape. The config's seed is
    /// the first epoch's seed.
    pub fn new(config: FleetConfig) -> Self {
        StreamingFleet { config, epoch: 0, stage: None }
    }

    /// Installs a [`RecordStage`] applied by [`next_epoch_records`] to each
    /// epoch's hour-ordered stream. [`next_epoch`] is unaffected — the
    /// stage only sees the serialized record form.
    ///
    /// [`next_epoch_records`]: StreamingFleet::next_epoch_records
    /// [`next_epoch`]: StreamingFleet::next_epoch
    #[must_use]
    pub fn with_record_stage(mut self, stage: RecordStage) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Number of epochs already generated.
    pub fn epochs_generated(&self) -> u64 {
        self.epoch
    }

    /// Simulates and returns the next epoch's dataset.
    pub fn next_epoch(&mut self) -> Dataset {
        let seed = self.config.seed.wrapping_add(self.epoch);
        self.epoch += 1;
        FleetSimulator::new(self.config.clone().with_seed(seed)).run()
    }

    /// Simulates the next epoch and returns its [`hour_ordered`] record
    /// stream, passed through the installed record stage (if any).
    pub fn next_epoch_records(&mut self) -> Vec<(DriveId, HealthRecord)> {
        self.next_epoch_with_records().1
    }

    /// Simulates the next epoch and returns both the epoch [`Dataset`]
    /// (clean, pre-stage — the drive manifest an online refit window
    /// needs for labels and rack topology) and its [`hour_ordered`]
    /// record stream passed through the installed record stage (the
    /// possibly-corrupted wire form a collector would deliver).
    pub fn next_epoch_with_records(&mut self) -> (Dataset, Vec<(DriveId, HealthRecord)>) {
        let index = self.epoch;
        let dataset = self.next_epoch();
        let records = hour_ordered(&dataset);
        let records = match self.stage.as_mut() {
            Some(stage) => stage(index, records),
            None => records,
        };
        (dataset, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_ordered_is_deterministic_and_time_sorted() {
        let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(11)).run();
        let a = hour_ordered(&dataset);
        let b = hour_ordered(&dataset);
        assert_eq!(a.len(), dataset.num_records());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.hour, y.1.hour);
        }
        for pair in a.windows(2) {
            let key0 = (pair[0].1.hour, pair[0].0 .0);
            let key1 = (pair[1].1.hour, pair[1].0 .0);
            assert!(key0 <= key1, "records must sort by (hour, drive)");
        }
    }

    #[test]
    fn tile_records_multiplies_drives_without_breaking_order() {
        let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(13)).run();
        let base = hour_ordered(&dataset);
        let stride = base.iter().map(|(d, _)| d.0).max().unwrap() + 1;
        let tiled = tile_records(&base, 4);
        assert_eq!(tiled.len(), base.len() * 4);
        // Each copy occupies its own id range; mapped back onto the base
        // range, every copy is the base stream bit for bit.
        for copy in 0..4u32 {
            let mapped: Vec<(DriveId, HealthRecord)> = tiled
                .iter()
                .filter(|(d, _)| d.0 / stride == copy)
                .map(|(d, r)| (DriveId(d.0 - copy * stride), r.clone()))
                .collect();
            assert_eq!(mapped, base, "copy {copy} must replicate the base stream");
        }
        for pair in tiled.windows(2) {
            assert!(
                (pair[0].1.hour, pair[0].0 .0) <= (pair[1].1.hour, pair[1].0 .0),
                "tiled stream must stay (hour, drive)-ordered"
            );
        }
        // Degenerate copies pass through untouched.
        assert_eq!(tile_records(&base, 1), base);
        assert_eq!(tile_records(&[], 8), Vec::new());
    }

    #[test]
    fn record_stage_sees_each_epoch_and_can_rewrite_it() {
        let config = FleetConfig::test_scale().with_seed(5);
        let mut plain = StreamingFleet::new(config.clone());
        let baseline = plain.next_epoch_records();
        assert!(!baseline.is_empty());

        // A stage that drops every other record, tagged with the epoch index.
        let mut staged = StreamingFleet::new(config).with_record_stage(Box::new(
            |epoch, records: Vec<(DriveId, HealthRecord)>| {
                assert_eq!(epoch, 0, "first epoch is index 0");
                records.into_iter().step_by(2).collect()
            },
        ));
        let thinned = staged.next_epoch_records();
        assert_eq!(thinned.len(), baseline.len().div_ceil(2));
        assert_eq!(thinned[0].0, baseline[0].0);
        assert_eq!(thinned[0].1, baseline[0].1);
    }

    #[test]
    fn epoch_with_records_exposes_the_manifest_and_the_staged_stream() {
        let config = FleetConfig::test_scale().with_seed(5);
        let mut plain = StreamingFleet::new(config.clone());
        let (dataset, records) = plain.next_epoch_with_records();
        assert_eq!(records, hour_ordered(&dataset));
        assert_eq!(plain.epochs_generated(), 1);

        // The stage rewrites the wire stream but never the manifest dataset.
        let mut staged = StreamingFleet::new(config).with_record_stage(Box::new(
            |_, records: Vec<(DriveId, HealthRecord)>| records.into_iter().take(3).collect(),
        ));
        let (dataset, staged_records) = staged.next_epoch_with_records();
        assert_eq!(staged_records.len(), 3);
        assert_eq!(staged_records[..], hour_ordered(&dataset)[..3]);
    }

    #[test]
    fn epochs_differ_but_replay_identically() {
        let config = FleetConfig::test_scale().with_seed(21);
        let mut stream = StreamingFleet::new(config.clone());
        let first = stream.next_epoch();
        let second = stream.next_epoch();
        assert_eq!(stream.epochs_generated(), 2);
        // Different epochs use different seeds...
        let same = first.drives().iter().zip(second.drives()).all(|(a, b)| {
            a.records().first().map(|r| r.values) == b.records().first().map(|r| r.values)
        });
        assert!(!same, "consecutive epochs must differ");
        // ...but a fresh stream replays the same epochs bit-for-bit.
        let mut replay = StreamingFleet::new(config);
        let first_again = replay.next_epoch();
        for (a, b) in first.drives().iter().zip(first_again.drives()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.records().len(), b.records().len());
            for (ra, rb) in a.records().iter().zip(b.records()) {
                assert_eq!(ra.values, rb.values, "replayed epoch must be identical");
            }
        }
    }
}
