//! Small sampling helpers on top of [`rand`]: normal, log-normal, Poisson
//! and exponential variates.
//!
//! Implemented in-crate (Box–Muller, Knuth, inverse transform) so the
//! workspace does not need `rand_distr`; the simulator only needs these four
//! distributions and modest statistical quality.

use rand::{Rng, RngExt};

/// Samples a normal variate with the given mean and standard deviation via
/// the Box–Muller transform.
///
/// A non-positive `sd` returns `mean` exactly, which lets callers disable
/// noise with `sd = 0.0`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    if sd <= 0.0 {
        return mean;
    }
    // Box–Muller: u1 in (0, 1] to keep ln finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + sd * mag * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a log-normal variate parameterized by the mean and standard
/// deviation of the *underlying normal* distribution.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples an exponential variate with the given rate `lambda` (mean
/// `1/lambda`) via inverse transform.
///
/// # Panics
///
/// Panics if `lambda` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "exponential rate must be positive, got {lambda}");
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / lambda
}

/// Samples a Poisson count with the given mean.
///
/// Uses Knuth's product method for small means and a normal approximation
/// (rounded, clamped at zero) for `mean > 30`, which is more than accurate
/// enough for hourly error counts.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let x = normal(rng, mean, mean.sqrt());
        return x.round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Returns `true` with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.random::<f64>() < p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDD5)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_zero_sd_is_deterministic() {
        let mut r = rng();
        assert_eq!(normal(&mut r, 3.25, 0.0), 3.25);
        assert_eq!(normal(&mut r, 3.25, -1.0), 3.25);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_zero_rate() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| poisson(&mut r, 0.3) as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut r = rng();
        let n = 5_000;
        let mean = (0..n).map(|_| poisson(&mut r, 100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -1.0), 0);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(log_normal(&mut r, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
        let hits = (0..10_000).filter(|_| bernoulli(&mut r, 0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
