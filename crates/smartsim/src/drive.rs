//! The per-drive state machine: sector pool, error processes and the hourly
//! SMART sampling step.
//!
//! A drive is modeled at the component level described in §II-A of the
//! paper: a pool of sectors with a spare area for reallocation, a background
//! scan that detects unstable (pending) sectors and either recovers them via
//! ECC or escalates them to uncorrectable errors, heads that produce read /
//! seek / high-fly errors, and a spindle whose spin-up time drifts with
//! wear. Failure processes (see [`crate::failure`]) do not write SMART
//! values directly — they modulate the *physical* rates and targets here,
//! and the vendor encoding in [`crate::smart`] turns physical state into
//! the recorded attributes.

use crate::attr::NUM_ATTRIBUTES;
use crate::environment::Environment;
use crate::randutil;
use crate::smart;
use rand::Rng;

/// Per-hour stochastic stress applied to a drive: expected event counts for
/// each error process, all scaled by the instantaneous workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourlyStress {
    /// Expected media (read) errors this hour at nominal load.
    pub media_rate: f64,
    /// Expected seek errors this hour at nominal load.
    pub seek_rate: f64,
    /// Expected ECC-recovered events this hour at nominal load.
    pub ecc_rate: f64,
    /// Probability that a new unstable (pending) sector event occurs this
    /// hour.
    pub pending_prob: f64,
    /// Mean number of sectors per pending event (≥ 1).
    pub pending_burst_size: f64,
    /// Probability of a write-error reallocation burst this hour.
    pub realloc_burst_prob: f64,
    /// Mean size of a reallocation burst (sectors).
    pub realloc_burst_size: f64,
    /// Probability of a high-fly write event this hour.
    pub high_fly_prob: f64,
}

impl HourlyStress {
    /// The background stress of a healthy drive.
    pub fn baseline() -> Self {
        HourlyStress {
            media_rate: 0.5,
            seek_rate: 0.3,
            ecc_rate: 1.0,
            pending_prob: 0.002,
            pending_burst_size: 1.0,
            realloc_burst_prob: 0.003,
            realloc_burst_size: 2.0,
            high_fly_prob: 0.004,
        }
    }
}

/// Deterministic anomaly levels a failure process imposes on top of the
/// stochastic stress. Depressions subtract health points from the recorded
/// rate attributes; targets ratchet monotone counters up to an absolute
/// level (counters never decrease, like real SMART counters).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AnomalyLevels {
    /// Health points subtracted from the recorded `RRER`.
    pub rrer_depression: f64,
    /// Health points subtracted from the recorded `HER`.
    pub her_depression: f64,
    /// Health points subtracted from the recorded `SUT`.
    pub sut_depression: f64,
    /// Absolute reallocated-sector target (ratcheted, not assigned).
    pub reallocated_target: Option<f64>,
    /// Absolute uncorrectable-error target (ratcheted).
    pub uncorrectable_target: Option<f64>,
    /// Absolute pending-sector target (ratcheted; pending may still drain
    /// below it via scan recovery in later hours).
    pub pending_target: Option<f64>,
}

/// Mutable physical state of one simulated drive.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveState {
    /// Cumulative power-on hours.
    pub age_hours: f64,
    /// Reallocated sectors (monotone counter).
    pub reallocated: f64,
    /// Currently pending (unstable, not yet resolved) sectors.
    pub pending: f64,
    /// Total reported uncorrectable errors (monotone counter).
    pub uncorrectable: f64,
    /// Total high-fly write events (monotone counter).
    pub high_fly: f64,
    /// Exponentially weighted recent media-error intensity.
    pub media_ewma: f64,
    /// Exponentially weighted recent seek-error intensity.
    pub seek_ewma: f64,
    /// Exponentially weighted recent ECC-recovery intensity.
    pub ecc_ewma: f64,
    /// Spin-up health before noise (drifts down with wear).
    pub spin_health: f64,
    /// Thermal offset over ambient for this drive (°C).
    pub thermal_offset: f64,
    /// Per-drive vendor baselines for the rate attributes (RRER, SER, HER):
    /// real fleets show unit-to-unit spread in these health values even when
    /// healthy, which keeps the dataset-wide normalization ranges realistic.
    bases: [f64; 3],
    /// Autocorrelated sensor-noise states for the five noisy attributes
    /// (RRER, SER, HER, SUT, TC). Vendors derive the "rate" health values
    /// from sliding windows, so consecutive readings drift rather than
    /// jump — an AR(1) process models that.
    noise: [f64; 5],
}

/// EWMA retention factor for windowed error intensities.
const EWMA_DECAY: f64 = 0.95;
/// AR(1) retention factor for the sensor-noise states.
const NOISE_PHI: f64 = 0.97;
/// Stationary standard deviations of the AR(1) sensor noise
/// (RRER, SER, HER, SUT, TC order).
const NOISE_SD: [f64; 5] = [0.5, 0.4, 0.5, 0.2, 0.4];

impl DriveState {
    /// Creates a healthy drive with the given starting age and thermal
    /// offset. Counters start near zero with a small random history
    /// proportional to age.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, age_hours: f64, thermal_offset: f64) -> Self {
        let wear = (age_hours / 30_000.0).min(1.5);
        DriveState {
            age_hours,
            reallocated: randutil::poisson(rng, 2.0 * wear) as f64,
            pending: 0.0,
            uncorrectable: 0.0,
            high_fly: randutil::poisson(rng, 1.5 * wear) as f64,
            media_ewma: 0.5,
            seek_ewma: 0.3,
            ecc_ewma: 1.0,
            spin_health: 95.0 - 4.0 * wear + randutil::normal(rng, 0.0, 1.5),
            thermal_offset,
            bases: [
                randutil::normal(rng, 82.0, 4.0),
                randutil::normal(rng, 76.0, 4.0),
                randutil::normal(rng, 72.0, 4.0),
            ],
            noise: {
                let mut noise = [0.0; 5];
                for (state, sd) in noise.iter_mut().zip(NOISE_SD) {
                    *state = randutil::normal(rng, 0.0, sd);
                }
                noise
            },
        }
    }

    /// Advances every AR(1) sensor-noise state by one hour.
    fn step_noise<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for (state, sd) in self.noise.iter_mut().zip(NOISE_SD) {
            let innovation_sd = sd * (1.0 - NOISE_PHI * NOISE_PHI).sqrt();
            *state = NOISE_PHI * *state + randutil::normal(rng, 0.0, innovation_sd);
        }
    }

    /// Advances the drive by one hour under the given stress and anomaly
    /// levels, returning the SMART record values for that hour (column order
    /// of [`crate::Attribute::ALL`]).
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        env: &Environment,
        hour: u32,
        stress: &HourlyStress,
        anomalies: &AnomalyLevels,
    ) -> [f64; NUM_ATTRIBUTES] {
        let load = env.load(hour);

        // --- stochastic error processes, scaled by workload -------------
        let media = randutil::poisson(rng, stress.media_rate * load) as f64;
        let seek = randutil::poisson(rng, stress.seek_rate * load) as f64;
        let ecc = randutil::poisson(rng, stress.ecc_rate * load) as f64;
        self.media_ewma = EWMA_DECAY * self.media_ewma + (1.0 - EWMA_DECAY) * media;
        self.seek_ewma = EWMA_DECAY * self.seek_ewma + (1.0 - EWMA_DECAY) * seek;
        self.ecc_ewma = EWMA_DECAY * self.ecc_ewma + (1.0 - EWMA_DECAY) * ecc;

        if randutil::bernoulli(rng, stress.pending_prob * load) {
            self.pending +=
                1.0 + randutil::poisson(rng, (stress.pending_burst_size - 1.0).max(0.0)) as f64;
        }
        if randutil::bernoulli(rng, stress.realloc_burst_prob * load) {
            self.reallocated += randutil::poisson(rng, stress.realloc_burst_size) as f64;
        }
        if randutil::bernoulli(rng, stress.high_fly_prob * load) {
            self.high_fly += 1.0;
        }

        // --- background scan: resolve or escalate pending sectors -------
        if self.pending > 0.0 {
            let mut remaining = 0.0;
            for _ in 0..self.pending.round() as u64 {
                if randutil::bernoulli(rng, 0.15) {
                    // ECC recovered the sector.
                } else if randutil::bernoulli(rng, 0.004) {
                    // Unrecoverable: becomes an uncorrectable error and the
                    // sector is reallocated on the next write.
                    self.uncorrectable += 1.0;
                    self.reallocated += 1.0;
                } else {
                    remaining += 1.0;
                }
            }
            self.pending = remaining;
        }

        // --- deterministic anomaly ratchets ------------------------------
        if let Some(target) = anomalies.reallocated_target {
            self.reallocated = self.reallocated.max(target);
        }
        if let Some(target) = anomalies.uncorrectable_target {
            self.uncorrectable = self.uncorrectable.max(target);
        }
        if let Some(target) = anomalies.pending_target {
            self.pending = self.pending.max(target);
        }
        self.reallocated = self.reallocated.min(smart::SPARE_SECTORS);

        // --- ageing -------------------------------------------------------
        self.age_hours += 1.0;
        self.spin_health -= 4.0 / 30_000.0; // slow wear drift
        self.step_noise(rng);

        // --- temperature ---------------------------------------------------
        let celsius = env.ambient_celsius(hour) + self.thermal_offset + self.noise[4];

        // --- vendor encoding -----------------------------------------------
        let rrer = smart::rate_health(self.bases[0], self.media_ewma, 4.0)
            - anomalies.rrer_depression
            + self.noise[0];
        let ser = smart::rate_health(self.bases[1], self.seek_ewma, 3.0) + self.noise[1];
        let her = smart::rate_health(self.bases[2], self.ecc_ewma, 2.5) - anomalies.her_depression
            + self.noise[2];
        let sut = self.spin_health - anomalies.sut_depression + self.noise[3];

        let mut values = [0.0; NUM_ATTRIBUTES];
        values[0] = smart::clamp_health(rrer);
        values[1] = smart::reallocated_health(self.reallocated);
        values[2] = smart::clamp_health(ser);
        values[3] = smart::uncorrectable_health(self.uncorrectable);
        values[4] = smart::high_fly_health(self.high_fly);
        values[5] = smart::clamp_health(her);
        values[6] = smart::pending_health(self.pending);
        values[7] = smart::clamp_health(sut);
        values[8] = self.reallocated;
        values[9] = self.pending;
        values[10] = smart::poh_health(self.age_hours);
        values[11] = smart::temperature_health(celsius);
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_hours(
        state: &mut DriveState,
        rng: &mut StdRng,
        env: &Environment,
        hours: u32,
        stress: &HourlyStress,
        anomalies: &AnomalyLevels,
    ) -> Vec<[f64; NUM_ATTRIBUTES]> {
        (0..hours).map(|h| state.step(rng, env, h, stress, anomalies)).collect()
    }

    #[test]
    fn healthy_drive_stays_healthy_for_a_week() {
        let mut rng = StdRng::seed_from_u64(11);
        let env = Environment::new();
        let mut state = DriveState::new(&mut rng, 10_000.0, 4.0);
        let records = run_hours(
            &mut state,
            &mut rng,
            &env,
            168,
            &HourlyStress::baseline(),
            &AnomalyLevels::default(),
        );
        let last = records.last().unwrap();
        assert!(last[Attribute::ReportedUncorrectable.index()] > 95.0);
        assert!(last[Attribute::ReallocatedSectors.index()] > 98.0);
        assert!(last[Attribute::RawReadErrorRate.index()] > 70.0);
        // All values in their vendor ranges.
        for rec in &records {
            for (i, &v) in rec.iter().enumerate() {
                let attr = Attribute::from_index(i).unwrap();
                if attr.value_kind() == crate::attr::ValueKind::HealthValue {
                    assert!((1.0..=100.0).contains(&v), "{attr} out of range: {v}");
                } else {
                    assert!(v >= 0.0);
                }
            }
        }
    }

    #[test]
    fn counters_are_monotone() {
        let mut rng = StdRng::seed_from_u64(5);
        let env = Environment::new();
        let mut state = DriveState::new(&mut rng, 20_000.0, 5.0);
        let mut stress = HourlyStress::baseline();
        stress.realloc_burst_prob = 0.2; // force activity
        let records =
            run_hours(&mut state, &mut rng, &env, 200, &stress, &AnomalyLevels::default());
        let realloc_idx = Attribute::RawReallocatedSectors.index();
        for w in records.windows(2) {
            assert!(w[1][realloc_idx] >= w[0][realloc_idx]);
        }
    }

    #[test]
    fn anomaly_targets_ratchet_counters() {
        let mut rng = StdRng::seed_from_u64(7);
        let env = Environment::new();
        let mut state = DriveState::new(&mut rng, 5_000.0, 4.0);
        let anomalies = AnomalyLevels {
            reallocated_target: Some(3000.0),
            uncorrectable_target: Some(50.0),
            ..AnomalyLevels::default()
        };
        let rec = state.step(&mut rng, &env, 0, &HourlyStress::baseline(), &anomalies);
        assert!(rec[Attribute::RawReallocatedSectors.index()] >= 3000.0);
        assert!(rec[Attribute::ReportedUncorrectable.index()] <= 100.0 - 0.5 * 50.0 + 1e-9);
        // A lower later target must not decrease the counter.
        let lower = AnomalyLevels { reallocated_target: Some(100.0), ..AnomalyLevels::default() };
        let rec2 = state.step(&mut rng, &env, 1, &HourlyStress::baseline(), &lower);
        assert!(rec2[Attribute::RawReallocatedSectors.index()] >= 3000.0);
    }

    #[test]
    fn depressions_lower_rate_attributes() {
        let env = Environment::new();
        let base_mean = {
            let mut rng = StdRng::seed_from_u64(9);
            let mut state = DriveState::new(&mut rng, 8_000.0, 4.0);
            let recs = run_hours(
                &mut state,
                &mut rng,
                &env,
                100,
                &HourlyStress::baseline(),
                &AnomalyLevels::default(),
            );
            recs.iter().map(|r| r[0]).sum::<f64>() / 100.0
        };
        let depressed_mean = {
            let mut rng = StdRng::seed_from_u64(9);
            let mut state = DriveState::new(&mut rng, 8_000.0, 4.0);
            let anomalies = AnomalyLevels { rrer_depression: 10.0, ..AnomalyLevels::default() };
            let recs =
                run_hours(&mut state, &mut rng, &env, 100, &HourlyStress::baseline(), &anomalies);
            recs.iter().map(|r| r[0]).sum::<f64>() / 100.0
        };
        assert!((base_mean - depressed_mean - 10.0).abs() < 1.0);
    }

    #[test]
    fn reallocation_saturates_at_spare_pool() {
        let mut rng = StdRng::seed_from_u64(13);
        let env = Environment::new();
        let mut state = DriveState::new(&mut rng, 1_000.0, 4.0);
        let anomalies = AnomalyLevels { reallocated_target: Some(1e9), ..AnomalyLevels::default() };
        let rec = state.step(&mut rng, &env, 0, &HourlyStress::baseline(), &anomalies);
        assert_eq!(rec[Attribute::RawReallocatedSectors.index()], smart::SPARE_SECTORS);
        assert_eq!(rec[Attribute::ReallocatedSectors.index()], smart::HEALTH_MIN);
    }

    #[test]
    fn hot_drive_reports_lower_tc_health() {
        let env = Environment::new();
        let mut rng = StdRng::seed_from_u64(17);
        let mut cool = DriveState::new(&mut rng, 10_000.0, 3.0);
        let mut hot = DriveState::new(&mut rng, 10_000.0, 14.0);
        let stress = HourlyStress::baseline();
        let anomalies = AnomalyLevels::default();
        let tc = Attribute::TemperatureCelsius.index();
        let cool_mean: f64 =
            (0..100).map(|h| cool.step(&mut rng, &env, h, &stress, &anomalies)[tc]).sum::<f64>()
                / 100.0;
        let hot_mean: f64 =
            (0..100).map(|h| hot.step(&mut rng, &env, h, &stress, &anomalies)[tc]).sum::<f64>()
                / 100.0;
        assert!(cool_mean - hot_mean > 8.0);
    }

    #[test]
    fn age_advances_and_poh_steps() {
        let mut rng = StdRng::seed_from_u64(19);
        let env = Environment::new();
        // Ages increment before sampling, so starting at 874 gives samples
        // at ages 875 (POH 100) and 876 (POH 99).
        let mut state = DriveState::new(&mut rng, 874.0, 4.0);
        let stress = HourlyStress::baseline();
        let anomalies = AnomalyLevels::default();
        let r1 = state.step(&mut rng, &env, 0, &stress, &anomalies);
        let r2 = state.step(&mut rng, &env, 1, &stress, &anomalies);
        let poh = Attribute::PowerOnHours.index();
        // Crossing the 876-hour boundary drops POH by exactly one point.
        assert_eq!(r1[poh] - r2[poh], 1.0);
        assert_eq!(state.age_hours, 876.0);
    }
}
