//! Dataset types: hourly health records, per-drive profiles and the
//! fleet-wide dataset with its Eq. (1) normalization.
//!
//! The schema mirrors §III of the paper: each record carries the twelve
//! attribute values of Table I; failed drives contribute up to 20 days
//! (480 hourly records) ending at the failure record, good drives up to
//! 7 days (168 records).

use crate::attr::{Attribute, NUM_ATTRIBUTES};
use crate::failure::FailureMode;
use crate::topology::RackId;
use dds_stats::{MinMaxScaler, StatsError};
use std::fmt;

/// Identifier of a drive within a dataset (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DriveId(pub u32);

impl fmt::Display for DriveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "drive#{}", self.0)
    }
}

/// Ground-truth label of a drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriveLabel {
    /// The drive survived the collection period.
    Good,
    /// The drive was replaced; its last record is the failure record.
    ///
    /// The contained [`FailureMode`] is simulator ground truth that real
    /// datasets lack — analysis code must not consult it except to validate
    /// unsupervised results.
    Failed(FailureMode),
}

impl DriveLabel {
    /// Whether the drive failed.
    pub fn is_failed(self) -> bool {
        matches!(self, DriveLabel::Failed(_))
    }

    /// The ground-truth failure mode, if failed.
    pub fn failure_mode(self) -> Option<FailureMode> {
        match self {
            DriveLabel::Good => None,
            DriveLabel::Failed(mode) => Some(mode),
        }
    }
}

/// One hourly SMART sample: the collection hour and the twelve attribute
/// values in [`Attribute::ALL`] column order (raw vendor scale, not yet
/// normalized).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRecord {
    /// Absolute hour within the collection period.
    pub hour: u32,
    /// Attribute values, indexed by [`Attribute::index`].
    pub values: [f64; NUM_ATTRIBUTES],
}

impl HealthRecord {
    /// Value of one attribute.
    pub fn value(&self, attr: Attribute) -> f64 {
        self.values[attr.index()]
    }
}

/// The recorded history of one drive.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveProfile {
    id: DriveId,
    label: DriveLabel,
    records: Vec<HealthRecord>,
    rack: Option<RackId>,
}

impl DriveProfile {
    /// Builds a profile. `records` must be non-empty and chronological.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty or not sorted by hour.
    pub fn new(id: DriveId, label: DriveLabel, records: Vec<HealthRecord>) -> Self {
        assert!(!records.is_empty(), "a drive profile needs at least one record");
        assert!(
            records.windows(2).all(|w| w[0].hour < w[1].hour),
            "records must be strictly chronological"
        );
        DriveProfile { id, label, records, rack: None }
    }

    /// Attaches the rack this drive is slotted into.
    #[must_use]
    pub fn with_rack(mut self, rack: RackId) -> Self {
        self.rack = Some(rack);
        self
    }

    /// The rack this drive sits in, when the topology is known (simulated
    /// fleets always know it; imported datasets may not).
    pub fn rack(&self) -> Option<RackId> {
        self.rack
    }

    /// The drive identifier.
    pub fn id(&self) -> DriveId {
        self.id
    }

    /// Ground-truth label.
    pub fn label(&self) -> DriveLabel {
        self.label
    }

    /// All records, chronological.
    pub fn records(&self) -> &[HealthRecord] {
        &self.records
    }

    /// The failure record (last record) of a failed drive, `None` for good
    /// drives.
    pub fn failure_record(&self) -> Option<&HealthRecord> {
        if self.label.is_failed() {
            self.records.last()
        } else {
            None
        }
    }

    /// Length of the recorded profile in hours (= number of hourly records).
    pub fn profile_hours(&self) -> usize {
        self.records.len()
    }

    /// The time series of one attribute over this profile (raw scale).
    pub fn series(&self, attr: Attribute) -> Vec<f64> {
        self.records.iter().map(|r| r.value(attr)).collect()
    }
}

/// The *unvalidated* history of one drive, as a collector would hand it
/// over: records may contain gaps, duplicated or out-of-order hours, and
/// missing (NaN / sentinel) attribute values.
///
/// Unlike [`DriveProfile`] — which asserts strict chronology on
/// construction — `RawProfile` carries whatever arrived on the wire.
/// Fault-injection layers produce it and data-quality gates consume it;
/// only sanitized records graduate into a [`DriveProfile`].
#[derive(Debug, Clone, PartialEq)]
pub struct RawProfile {
    /// The drive identifier.
    pub id: DriveId,
    /// Ground-truth label.
    pub label: DriveLabel,
    /// The rack this drive sits in, when known.
    pub rack: Option<RackId>,
    /// Records in arrival order — no ordering or completeness guarantee.
    pub records: Vec<HealthRecord>,
}

impl From<&DriveProfile> for RawProfile {
    fn from(profile: &DriveProfile) -> Self {
        RawProfile {
            id: profile.id(),
            label: profile.label(),
            rack: profile.rack(),
            records: profile.records().to_vec(),
        }
    }
}

/// A fleet-wide dataset: every drive profile plus the Eq. (1) min–max
/// normalization fitted on all records of all drives.
#[derive(Debug, Clone)]
pub struct Dataset {
    drives: Vec<DriveProfile>,
    scaler: MinMaxScaler,
}

impl Dataset {
    /// Assembles a dataset and fits the Eq. (1) scaler over every record.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when no drive has any record.
    pub fn new(drives: Vec<DriveProfile>) -> Result<Self, StatsError> {
        let rows: Vec<Vec<f64>> =
            drives.iter().flat_map(|d| d.records().iter().map(|r| r.values.to_vec())).collect();
        let scaler = MinMaxScaler::fit(&rows)?;
        Ok(Dataset { drives, scaler })
    }

    /// All drives.
    pub fn drives(&self) -> &[DriveProfile] {
        &self.drives
    }

    /// Looks up a drive by id.
    pub fn drive(&self, id: DriveId) -> Option<&DriveProfile> {
        self.drives.iter().find(|d| d.id() == id)
    }

    /// Iterator over failed drives.
    pub fn failed_drives(&self) -> impl Iterator<Item = &DriveProfile> {
        self.drives.iter().filter(|d| d.label().is_failed())
    }

    /// Iterator over good drives.
    pub fn good_drives(&self) -> impl Iterator<Item = &DriveProfile> {
        self.drives.iter().filter(|d| !d.label().is_failed())
    }

    /// Total number of health records across all drives.
    pub fn num_records(&self) -> usize {
        self.drives.iter().map(|d| d.records().len()).sum()
    }

    /// Total number of health records of failed drives.
    pub fn num_failed_records(&self) -> usize {
        self.failed_drives().map(|d| d.records().len()).sum()
    }

    /// The fitted Eq. (1) scaler (columns = [`Attribute::ALL`] order).
    pub fn scaler(&self) -> &MinMaxScaler {
        &self.scaler
    }

    /// Normalizes one record to `[-1, 1]` per Eq. (1).
    pub fn normalize_record(&self, record: &HealthRecord) -> [f64; NUM_ATTRIBUTES] {
        let mut out = [0.0; NUM_ATTRIBUTES];
        for (c, slot) in out.iter_mut().enumerate() {
            *slot = self.scaler.transform_value(c, record.values[c]);
        }
        out
    }

    /// Normalized value of one attribute in one record.
    pub fn normalize_value(&self, attr: Attribute, value: f64) -> f64 {
        self.scaler.transform_value(attr.index(), value)
    }

    /// Normalized time series of one attribute over a profile.
    pub fn normalized_series(&self, profile: &DriveProfile, attr: Attribute) -> Vec<f64> {
        profile
            .records()
            .iter()
            .map(|r| self.scaler.transform_value(attr.index(), r.value(attr)))
            .collect()
    }

    /// Normalized full-record matrix (rows = records) for a profile.
    pub fn normalized_matrix(&self, profile: &DriveProfile) -> Vec<[f64; NUM_ATTRIBUTES]> {
        profile.records().iter().map(|r| self.normalize_record(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(hour: u32, fill: f64) -> HealthRecord {
        HealthRecord { hour, values: [fill; NUM_ATTRIBUTES] }
    }

    fn two_drive_dataset() -> Dataset {
        let good =
            DriveProfile::new(DriveId(0), DriveLabel::Good, vec![record(0, 10.0), record(1, 20.0)]);
        let failed = DriveProfile::new(
            DriveId(1),
            DriveLabel::Failed(FailureMode::Logical),
            vec![record(0, 0.0), record(1, 40.0)],
        );
        Dataset::new(vec![good, failed]).unwrap()
    }

    #[test]
    fn profile_accessors() {
        let ds = two_drive_dataset();
        assert_eq!(ds.drives().len(), 2);
        assert_eq!(ds.failed_drives().count(), 1);
        assert_eq!(ds.good_drives().count(), 1);
        assert_eq!(ds.num_records(), 4);
        assert_eq!(ds.num_failed_records(), 2);
        assert!(ds.drive(DriveId(1)).unwrap().label().is_failed());
        assert!(ds.drive(DriveId(9)).is_none());
    }

    #[test]
    fn failure_record_is_last_for_failed_only() {
        let ds = two_drive_dataset();
        let failed = ds.drive(DriveId(1)).unwrap();
        assert_eq!(failed.failure_record().unwrap().hour, 1);
        let good = ds.drive(DriveId(0)).unwrap();
        assert!(good.failure_record().is_none());
    }

    #[test]
    fn normalization_uses_dataset_wide_bounds() {
        let ds = two_drive_dataset();
        // Column range over all records is [0, 40].
        let rec = record(0, 40.0);
        let norm = ds.normalize_record(&rec);
        assert!(norm.iter().all(|&v| (v - 1.0).abs() < 1e-12));
        let rec0 = record(0, 0.0);
        let norm0 = ds.normalize_record(&rec0);
        assert!(norm0.iter().all(|&v| (v + 1.0).abs() < 1e-12));
        assert_eq!(ds.normalize_value(Attribute::PowerOnHours, 20.0), 0.0);
    }

    #[test]
    fn normalized_series_tracks_profile() {
        let ds = two_drive_dataset();
        let failed = ds.drive(DriveId(1)).unwrap();
        let series = ds.normalized_series(failed, Attribute::RawReadErrorRate);
        assert_eq!(series, vec![-1.0, 1.0]);
        let matrix = ds.normalized_matrix(failed);
        assert_eq!(matrix.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_profile_panics() {
        DriveProfile::new(DriveId(0), DriveLabel::Good, vec![]);
    }

    #[test]
    #[should_panic(expected = "strictly chronological")]
    fn unsorted_records_panic() {
        DriveProfile::new(DriveId(0), DriveLabel::Good, vec![record(5, 1.0), record(3, 1.0)]);
    }

    #[test]
    fn label_helpers() {
        assert!(DriveLabel::Failed(FailureMode::HeadWear).is_failed());
        assert!(!DriveLabel::Good.is_failed());
        assert_eq!(
            DriveLabel::Failed(FailureMode::BadSector).failure_mode(),
            Some(FailureMode::BadSector)
        );
        assert_eq!(DriveLabel::Good.failure_mode(), None);
        assert_eq!(DriveId(3).to_string(), "drive#3");
    }
}
