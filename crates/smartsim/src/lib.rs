//! Component-level SMART telemetry simulator for a datacenter disk fleet.
//!
//! The IISWC 2015 paper *"Characterizing Disk Failures with Quantified Disk
//! Degradation Signatures"* analyses a proprietary dataset: 23,395
//! enterprise drives of a single model sampled hourly for eight weeks, with
//! 433 failed drives (20-day pre-failure history) and 22,962 good drives
//! (up to 7-day history). That dataset is not public, so this crate builds
//! the closest synthetic equivalent: a mechanistic drive model whose three
//! failure processes — **logical/firmware corruption** (heat-triggered,
//! abrupt), **bad-sector accumulation** (pending → uncorrectable, slow and
//! monotone) and **read/write-head wear** (reallocation storms on old
//! drives) — produce SMART trajectories with the same shapes the paper
//! derives its results from.
//!
//! The output is a [`Dataset`] with the exact schema of the paper's Table I:
//! twelve attributes per hourly [`HealthRecord`] (eight R/W health values,
//! two R/W raw counters, two environmental values), vendor encoding quirks
//! included (noisy Seagate-style "rate" health values, the 876-hour
//! power-on-hours step, one-byte health saturation).
//!
//! # Example
//!
//! ```
//! use dds_smartsim::{FleetConfig, FleetSimulator};
//!
//! let config = FleetConfig::test_scale().with_seed(7);
//! let dataset = FleetSimulator::new(config).run();
//! assert!(dataset.failed_drives().count() > 0);
//! let failed = dataset.failed_drives().next().unwrap();
//! // The last record of a failed drive is its failure record.
//! assert!(!failed.records().is_empty());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod attr;
pub mod dataset;
pub mod drive;
pub mod environment;
pub mod failure;
pub mod fleet;
pub mod io;
pub mod randutil;
pub mod smart;
pub mod stream;
pub mod topology;

pub use attr::{Attribute, AttributeKind, ValueKind, NUM_ATTRIBUTES};
pub use dataset::{Dataset, DriveId, DriveLabel, DriveProfile, HealthRecord, RawProfile};
pub use environment::{Environment, LoadModel};
pub use failure::FailureMode;
pub use fleet::{FleetConfig, FleetSimulator};
pub use stream::StreamingFleet;
pub use topology::{Rack, RackId, Topology};
