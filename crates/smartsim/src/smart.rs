//! Vendor SMART encoding: physical state → the one-byte health values and
//! raw counters a drive actually reports.
//!
//! §III of the paper notes that "the formats of the attribute values are
//! vendor-dependent" and that some normalized health values lose accuracy,
//! which is why the raw counters of `RSC` and `CPSC` are kept alongside.
//! This module reproduces the encoding quirks the analysis has to survive:
//!
//! * health values are clamped to the one-byte range `[1, 100]` and
//!   saturate at the bottom;
//! * the "rate" attributes (`RRER`, `SER`, `HER`) are noisy even on healthy
//!   drives, because vendors derive them from windowed error/operation
//!   ratios;
//! * `POH` loses one point for every 876 hours of operation, in abrupt
//!   steps (§IV-D);
//! * `TC` reports an airflow-temperature health value that *decreases* as
//!   the drive runs hotter.

/// Lowest reportable one-byte health value.
pub const HEALTH_MIN: f64 = 1.0;
/// Highest reportable health value for this drive model.
pub const HEALTH_MAX: f64 = 100.0;
/// Hours of operation per one-point `POH` health decrement (§IV-D).
pub const POH_STEP_HOURS: f64 = 876.0;
/// Number of spare sectors the model reserves for reallocation
/// ("disk drives usually reserve several thousand spare sectors", §II-A).
pub const SPARE_SECTORS: f64 = 4096.0;

/// Clamps a computed health value to the reportable one-byte range.
pub fn clamp_health(value: f64) -> f64 {
    value.clamp(HEALTH_MIN, HEALTH_MAX)
}

/// Encodes a windowed error intensity as a noisy vendor "rate" health value:
/// `base − sensitivity · intensity`, clamped.
///
/// The caller adds measurement noise; this function is deterministic.
pub fn rate_health(base: f64, intensity: f64, sensitivity: f64) -> f64 {
    clamp_health(base - sensitivity * intensity)
}

/// Encodes the reallocated-sector health value: full health with no
/// reallocations, saturating at `HEALTH_MIN` when the spare pool is
/// exhausted.
pub fn reallocated_health(reallocated: f64) -> f64 {
    clamp_health(HEALTH_MAX - (HEALTH_MAX - HEALTH_MIN) * (reallocated / SPARE_SECTORS))
}

/// Encodes reported-uncorrectable health: each uncorrectable error costs
/// half a point.
pub fn uncorrectable_health(uncorrectable: f64) -> f64 {
    clamp_health(HEALTH_MAX - 0.5 * uncorrectable)
}

/// Encodes high-fly-write health: each recorded high-fly event costs
/// 0.35 points.
pub fn high_fly_health(high_fly: f64) -> f64 {
    clamp_health(HEALTH_MAX - 0.35 * high_fly)
}

/// Encodes current-pending-sector health: each pending sector costs
/// 1.5 points.
pub fn pending_health(pending: f64) -> f64 {
    clamp_health(HEALTH_MAX - 1.5 * pending)
}

/// Encodes power-on-hours health with the abrupt 876-hour step quirk:
/// the value drops by exactly one point per [`POH_STEP_HOURS`] of operation
/// and is otherwise constant between steps.
pub fn poh_health(age_hours: f64) -> f64 {
    clamp_health(HEALTH_MAX - (age_hours.max(0.0) / POH_STEP_HOURS).floor())
}

/// Encodes drive temperature as a health value: `100 − °C`, so hotter
/// drives score lower (matching the paper's Fig. 11, where hot failure
/// groups have *negative* TC z-scores versus good drives).
pub fn temperature_health(celsius: f64) -> f64 {
    clamp_health(HEALTH_MAX - celsius)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_respects_byte_range() {
        assert_eq!(clamp_health(150.0), HEALTH_MAX);
        assert_eq!(clamp_health(-3.0), HEALTH_MIN);
        assert_eq!(clamp_health(42.5), 42.5);
    }

    #[test]
    fn rate_health_decreases_with_intensity() {
        let healthy = rate_health(80.0, 0.5, 4.0);
        let sick = rate_health(80.0, 5.0, 4.0);
        assert!(sick < healthy);
        assert_eq!(rate_health(80.0, 1000.0, 4.0), HEALTH_MIN);
    }

    #[test]
    fn reallocated_health_spans_spare_pool() {
        assert_eq!(reallocated_health(0.0), HEALTH_MAX);
        assert_eq!(reallocated_health(SPARE_SECTORS), HEALTH_MIN);
        let mid = reallocated_health(SPARE_SECTORS / 2.0);
        assert!((mid - 50.5).abs() < 0.01);
    }

    #[test]
    fn poh_steps_every_876_hours() {
        assert_eq!(poh_health(0.0), 100.0);
        assert_eq!(poh_health(875.9), 100.0);
        assert_eq!(poh_health(876.0), 99.0);
        assert_eq!(poh_health(876.0 * 2.0 - 0.1), 99.0);
        assert_eq!(poh_health(876.0 * 30.0), 70.0);
        // Very old drives saturate rather than underflow.
        assert_eq!(poh_health(876.0 * 1000.0), HEALTH_MIN);
        assert_eq!(poh_health(-5.0), HEALTH_MAX);
    }

    #[test]
    fn poh_constant_within_a_step() {
        // Hourly samples between steps must not change — this is exactly the
        // quirk §IV-D describes and the influence analysis must compensate.
        let start = 876.0 * 10.0 + 1.0;
        let a = poh_health(start);
        let b = poh_health(start + 100.0);
        assert_eq!(a, b);
    }

    #[test]
    fn hotter_is_less_healthy() {
        assert!(temperature_health(45.0) < temperature_health(30.0));
        assert_eq!(temperature_health(30.0), 70.0);
    }

    #[test]
    fn counter_healths_are_monotone() {
        for (f, max_in) in [
            (uncorrectable_health as fn(f64) -> f64, 200.0),
            (high_fly_health, 400.0),
            (pending_health, 100.0),
        ] {
            let mut prev = f(0.0);
            let mut x = 0.0;
            while x < max_in {
                x += 1.0;
                let cur = f(x);
                assert!(cur <= prev);
                prev = cur;
            }
            assert_eq!(f(1e9), HEALTH_MIN);
        }
    }
}
