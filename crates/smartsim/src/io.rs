//! CSV import/export of datasets.
//!
//! The analysis pipeline only needs the [`Dataset`] schema, so any real
//! SMART corpus (e.g. a Backblaze-style dump) can be adapted by writing
//! this simple CSV layout and loading it with [`read_csv`]:
//!
//! ```csv
//! drive_id,label,hour,RRER,RSC,SER,RUE,HFW,HER,CPSC,SUT,R-RSC,R-CPSC,POH,TC
//! 0,good,0,81.2,100,75.9,100,100,71.4,100,94.8,0,0,88,69.4
//! 7,failed:bad sector failures,113,62.0,97.2,74.1,55.5,99.3,70.0,47.5,93.0,114,35,86,66.1
//! ```
//!
//! * `label` is `good`, `failed` (unknown mode) or `failed:<type name>`
//!   with the Table II type names;
//! * rows may appear in any order; records are sorted per drive by `hour`;
//! * the 12 value columns follow [`Attribute::ALL`] order.
//!
//! Export is lossless for everything the pipeline consumes (ground-truth
//! modes included), so `write_csv` → `read_csv` round-trips a simulated
//! fleet exactly. Rack placement is simulator metadata and is *not*
//! serialized; imported drives have no rack.

use crate::attr::{Attribute, NUM_ATTRIBUTES};
use crate::dataset::{Dataset, DriveId, DriveLabel, DriveProfile, HealthRecord};
use crate::failure::FailureMode;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors produced while reading or writing dataset CSV.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file contained no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Empty => write!(f, "csv contains no records"),
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn label_to_string(label: DriveLabel) -> String {
    match label {
        DriveLabel::Good => "good".to_string(),
        DriveLabel::Failed(mode) => format!("failed:{}", mode.type_name()),
    }
}

fn label_from_str(text: &str) -> Option<DriveLabel> {
    if text == "good" {
        return Some(DriveLabel::Good);
    }
    let rest = text.strip_prefix("failed")?;
    let rest = rest.strip_prefix(':').unwrap_or("");
    if rest.is_empty() {
        // Unknown mode: default to the majority class so ground-truth-free
        // corpora still load. The analysis never reads the mode except for
        // validation.
        return Some(DriveLabel::Failed(FailureMode::Logical));
    }
    FailureMode::ALL.into_iter().find(|m| m.type_name() == rest).map(DriveLabel::Failed)
}

/// Writes a dataset as CSV (records of all drives, one row per hour).
///
/// # Errors
///
/// Returns [`CsvError::Io`] on write failures.
pub fn write_csv<W: Write>(dataset: &Dataset, mut writer: W) -> Result<(), CsvError> {
    let header: Vec<&str> = Attribute::ALL.iter().map(|a| a.symbol()).collect();
    writeln!(writer, "drive_id,label,hour,{}", header.join(","))?;
    for drive in dataset.drives() {
        let label = label_to_string(drive.label());
        for record in drive.records() {
            write!(writer, "{},{},{}", drive.id().0, label, record.hour)?;
            for value in &record.values {
                write!(writer, ",{value}")?;
            }
            writeln!(writer)?;
        }
    }
    Ok(())
}

/// Reads a dataset from the CSV layout written by [`write_csv`].
///
/// # Errors
///
/// Returns [`CsvError::Parse`] for malformed rows, [`CsvError::Empty`] for
/// a data-free file, and [`CsvError::Io`] on read failures. Drives with
/// duplicate hours are rejected.
pub fn read_csv<R: Read>(reader: R) -> Result<Dataset, CsvError> {
    let buffered = BufReader::new(reader);
    let mut drives: BTreeMap<u32, (DriveLabel, BTreeMap<u32, [f64; NUM_ATTRIBUTES]>)> =
        BTreeMap::new();
    for (index, line) in buffered.lines().enumerate() {
        let line_no = index + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (line_no == 1 && trimmed.starts_with("drive_id")) {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 3 + NUM_ATTRIBUTES {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("expected {} fields, found {}", 3 + NUM_ATTRIBUTES, fields.len()),
            });
        }
        let id: u32 = fields[0].parse().map_err(|_| CsvError::Parse {
            line: line_no,
            message: format!("invalid drive id {:?}", fields[0]),
        })?;
        let label = label_from_str(fields[1]).ok_or_else(|| CsvError::Parse {
            line: line_no,
            message: format!("invalid label {:?}", fields[1]),
        })?;
        let hour: u32 = fields[2].parse().map_err(|_| CsvError::Parse {
            line: line_no,
            message: format!("invalid hour {:?}", fields[2]),
        })?;
        let mut values = [0.0; NUM_ATTRIBUTES];
        for (slot, field) in values.iter_mut().zip(&fields[3..]) {
            let value: f64 = field.parse().map_err(|_| CsvError::Parse {
                line: line_no,
                message: format!("invalid value {field:?}"),
            })?;
            // `f64::parse` happily accepts NaN/inf spellings, which would
            // poison every downstream distance and normalization; missing
            // data must instead be expressed with the vendor sentinel and
            // handled by the quality gate.
            if !value.is_finite() {
                return Err(CsvError::Parse {
                    line: line_no,
                    message: format!("non-finite value {field:?}"),
                });
            }
            *slot = value;
        }
        let entry = drives.entry(id).or_insert_with(|| (label, BTreeMap::new()));
        if entry.0 != label {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("drive {id} has conflicting labels"),
            });
        }
        if entry.1.insert(hour, values).is_some() {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("drive {id} has duplicate hour {hour}"),
            });
        }
    }
    if drives.is_empty() {
        return Err(CsvError::Empty);
    }
    let profiles: Vec<DriveProfile> = drives
        .into_iter()
        .map(|(id, (label, records))| {
            let records: Vec<HealthRecord> =
                records.into_iter().map(|(hour, values)| HealthRecord { hour, values }).collect();
            DriveProfile::new(DriveId(id), label, records)
        })
        .collect();
    Dataset::new(profiles)
        .map_err(|e| CsvError::Parse { line: 0, message: format!("dataset assembly failed: {e}") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetConfig, FleetSimulator};

    fn small_fleet() -> Dataset {
        FleetSimulator::new(
            FleetConfig::test_scale().with_good_drives(8).with_failed_drives(5).with_seed(777),
        )
        .run()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = small_fleet();
        let mut buffer = Vec::new();
        write_csv(&original, &mut buffer).unwrap();
        let loaded = read_csv(buffer.as_slice()).unwrap();
        assert_eq!(loaded.drives().len(), original.drives().len());
        assert_eq!(loaded.num_records(), original.num_records());
        for (a, b) in original.drives().iter().zip(loaded.drives()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.label(), b.label());
            assert_eq!(a.records().len(), b.records().len());
            for (ra, rb) in a.records().iter().zip(b.records()) {
                assert_eq!(ra.hour, rb.hour);
                assert_eq!(ra.values, rb.values);
            }
        }
    }

    #[test]
    fn header_uses_symbols() {
        let mut buffer = Vec::new();
        write_csv(&small_fleet(), &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let header = text.lines().next().unwrap();
        assert_eq!(
            header,
            "drive_id,label,hour,RRER,RSC,SER,RUE,HFW,HER,CPSC,SUT,R-RSC,R-CPSC,POH,TC"
        );
    }

    #[test]
    fn labels_roundtrip() {
        for label in [
            DriveLabel::Good,
            DriveLabel::Failed(FailureMode::Logical),
            DriveLabel::Failed(FailureMode::BadSector),
            DriveLabel::Failed(FailureMode::HeadWear),
        ] {
            assert_eq!(label_from_str(&label_to_string(label)), Some(label));
        }
        // Unknown mode defaults to a failed label.
        assert!(matches!(label_from_str("failed"), Some(DriveLabel::Failed(_))));
        assert_eq!(label_from_str("bogus"), None);
        assert_eq!(label_from_str("failed:bogus"), None);
    }

    #[test]
    fn rejects_malformed_rows() {
        let bad_fields = "drive_id,label,hour,a\n0,good,0,1.0\n";
        assert!(matches!(read_csv(bad_fields.as_bytes()), Err(CsvError::Parse { line: 2, .. })));
        let bad_value = format!("0,good,0{}\n", ",x".repeat(NUM_ATTRIBUTES));
        assert!(read_csv(bad_value.as_bytes()).is_err());
        let bad_label = format!("0,sideways,0{}\n", ",1.0".repeat(NUM_ATTRIBUTES));
        assert!(read_csv(bad_label.as_bytes()).is_err());
        assert!(matches!(read_csv("".as_bytes()), Err(CsvError::Empty)));
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["NaN", "nan", "inf", "-inf", "Infinity"] {
            let row = format!("0,good,0,{bad}{}\n", ",1.0".repeat(NUM_ATTRIBUTES - 1));
            let err = read_csv(row.as_bytes()).unwrap_err();
            match err {
                CsvError::Parse { line, message } => {
                    assert_eq!(line, 1, "{bad}");
                    assert!(message.contains("non-finite"), "{bad}: {message}");
                }
                other => panic!("{bad}: expected Parse error, got {other}"),
            }
        }
        // Finite values in any position still load.
        let row = format!("0,good,0{}\n", ",1.5".repeat(NUM_ATTRIBUTES));
        assert!(read_csv(row.as_bytes()).is_ok());
    }

    #[test]
    fn rejects_duplicate_hours_and_conflicting_labels() {
        let values = ",1.0".repeat(NUM_ATTRIBUTES);
        let duplicate = format!("0,good,5{values}\n0,good,5{values}\n");
        assert!(read_csv(duplicate.as_bytes()).is_err());
        let conflict = format!("0,good,1{values}\n0,failed:logical failures,2{values}\n");
        assert!(read_csv(conflict.as_bytes()).is_err());
    }

    #[test]
    fn rows_may_arrive_out_of_order() {
        let values = ",1.0".repeat(NUM_ATTRIBUTES);
        let csv = format!("0,good,7{values}\n0,good,3{values}\n0,good,5{values}\n");
        let dataset = read_csv(csv.as_bytes()).unwrap();
        let hours: Vec<u32> = dataset.drives()[0].records().iter().map(|r| r.hour).collect();
        assert_eq!(hours, vec![3, 5, 7]);
    }

    #[test]
    fn loaded_dataset_is_analyzable() {
        let original = small_fleet();
        let mut buffer = Vec::new();
        write_csv(&original, &mut buffer).unwrap();
        let loaded = read_csv(buffer.as_slice()).unwrap();
        // The normalization scaler must be refit identically.
        let drive = loaded.failed_drives().next().unwrap();
        let record = drive.records().last().unwrap();
        let norm = loaded.normalize_record(record);
        assert!(norm.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::Parse { line: 7, message: "boom".to_string() };
        assert_eq!(e.to_string(), "line 7: boom");
        assert!(CsvError::Empty.to_string().contains("no records"));
        let io = CsvError::from(std::io::Error::other("x"));
        assert!(io.source().is_some());
    }
}
