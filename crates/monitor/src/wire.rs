//! Wire formats for batched ingest: a compact binary codec and a
//! CSV-chunk fallback, both decoding to `(DriveId, HealthRecord)` pairs.
//!
//! Relays POST batches to the `/ingest` endpoint; the service sniffs the
//! leading bytes to pick the decoder (binary batches always start with
//! [`BATCH_MAGIC`]). The binary layout is little-endian throughout:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "DDSB"
//! 4       1     version (currently 1)
//! 5       4     record count (u32)
//! 9       104×N records: drive_id u32, hour u32, 12 × f64 attributes
//! ```
//!
//! Floats travel as raw IEEE-754 bits, so a decode of an encode is
//! bit-identical — the same determinism discipline as the model artifact
//! codec. The CSV chunk format is one record per line,
//! `drive_id,hour,v0,…,v11`, with blank lines and `#` comments ignored.

use dds_smartsim::{DriveId, HealthRecord, NUM_ATTRIBUTES};
use std::error::Error;
use std::fmt;

/// Leading bytes of every binary batch.
pub const BATCH_MAGIC: [u8; 4] = *b"DDSB";

/// The binary batch version this build encodes and accepts.
pub const BATCH_VERSION: u8 = 1;

/// Bytes per record on the wire: drive id + hour + the attribute vector.
pub const RECORD_WIRE_BYTES: usize = 8 + 8 * NUM_ATTRIBUTES;

/// Bytes before the first record: magic + version + count.
pub const BATCH_HEADER_BYTES: usize = 9;

/// Why a batch failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The payload does not start with [`BATCH_MAGIC`].
    BadMagic,
    /// The payload's version byte is not [`BATCH_VERSION`].
    UnsupportedVersion(u8),
    /// The payload is shorter than its header-declared record count.
    Truncated {
        /// Bytes the declared count requires.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A CSV line did not parse.
    BadCsvLine {
        /// 1-based line number within the chunk.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "batch does not start with the DDSB magic"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported batch version {v} (this build speaks {BATCH_VERSION})")
            }
            WireError::Truncated { expected, actual } => {
                write!(f, "truncated batch: declared size needs {expected} bytes, got {actual}")
            }
            WireError::BadCsvLine { line, reason } => {
                write!(f, "CSV chunk line {line}: {reason}")
            }
        }
    }
}

impl Error for WireError {}

/// Encodes a record batch into the binary wire format.
///
/// # Example
///
/// A round trip is bit-identical, NaNs and sentinels included:
///
/// ```
/// use dds_monitor::wire::{decode_batch, encode_batch};
/// use dds_smartsim::{DriveId, HealthRecord, NUM_ATTRIBUTES};
///
/// let mut record = HealthRecord { hour: 17, values: [1.5; NUM_ATTRIBUTES] };
/// record.values[3] = 65_535.0; // vendor sentinel survives the wire
/// let batch = vec![(DriveId(42), record)];
///
/// let bytes = encode_batch(&batch);
/// assert_eq!(&bytes[..4], b"DDSB");
/// assert_eq!(decode_batch(&bytes)?, batch);
/// # Ok::<(), dds_monitor::wire::WireError>(())
/// ```
pub fn encode_batch(records: &[(DriveId, HealthRecord)]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(BATCH_HEADER_BYTES + records.len() * RECORD_WIRE_BYTES);
    bytes.extend_from_slice(&BATCH_MAGIC);
    bytes.push(BATCH_VERSION);
    bytes.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for (drive, record) in records {
        bytes.extend_from_slice(&drive.0.to_le_bytes());
        bytes.extend_from_slice(&record.hour.to_le_bytes());
        for value in &record.values {
            bytes.extend_from_slice(&value.to_le_bytes());
        }
    }
    bytes
}

/// Reads a little-endian `u32` from the first 4 bytes of `bytes`.
/// Callers guarantee the length (header check / `chunks_exact`), so the
/// indexing below never fires — but unlike `try_into().expect(..)` the
/// guarantee is local and obvious, not a panic waiting on a refactor.
fn le_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

/// Decodes a binary batch. Trailing bytes past the declared count are
/// rejected as [`WireError::Truncated`] in reverse — a length mismatch
/// either way means the relay and the service disagree about the format.
///
/// This is the untrusted surface of `POST /ingest`: every byte here is
/// attacker-controlled, so the decode is panic-free by construction —
/// the declared-count size math is checked (a count engineered to wrap
/// `usize` reports [`WireError::Truncated`]) and the record walk uses
/// exact-size chunks instead of index arithmetic.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<(DriveId, HealthRecord)>, WireError> {
    if bytes.len() < BATCH_HEADER_BYTES || bytes[..4] != BATCH_MAGIC {
        return Err(WireError::BadMagic);
    }
    if bytes[4] != BATCH_VERSION {
        return Err(WireError::UnsupportedVersion(bytes[4]));
    }
    let count = le_u32(&bytes[5..9]) as usize;
    let expected = count
        .checked_mul(RECORD_WIRE_BYTES)
        .and_then(|n| n.checked_add(BATCH_HEADER_BYTES))
        .ok_or(WireError::Truncated { expected: usize::MAX, actual: bytes.len() })?;
    if bytes.len() != expected {
        return Err(WireError::Truncated { expected, actual: bytes.len() });
    }
    // The exact-length check above means `count` records really are
    // present, so this capacity is bounded by the payload we received.
    let mut records = Vec::with_capacity(count);
    for chunk in bytes[BATCH_HEADER_BYTES..].chunks_exact(RECORD_WIRE_BYTES) {
        let drive = le_u32(&chunk[..4]);
        let hour = le_u32(&chunk[4..8]);
        let mut values = [0.0; NUM_ATTRIBUTES];
        for (value, raw) in values.iter_mut().zip(chunk[8..].chunks_exact(8)) {
            *value = f64::from_le_bytes([
                raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7],
            ]);
        }
        records.push((DriveId(drive), HealthRecord { hour, values }));
    }
    Ok(records)
}

/// Whether a POST body looks like a binary batch (vs a CSV chunk).
pub fn looks_binary(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == BATCH_MAGIC
}

/// Parses a CSV chunk: one `drive_id,hour,v0,…,v11` record per line.
///
/// Blank lines and lines starting with `#` are skipped. Attribute values
/// may be anything `f64` parses — including `NaN`, which the quality gate
/// downstream treats as missing — so a lossy collector can forward its
/// holes instead of inventing numbers.
///
/// # Example
///
/// ```
/// use dds_monitor::wire::parse_csv_chunk;
/// use dds_smartsim::DriveId;
///
/// let chunk = "# relay 7, hour 12\n12,3,1,2,3,4,5,6,7,8,9,10,11,12\n";
/// let records = parse_csv_chunk(chunk)?;
/// assert_eq!(records.len(), 1);
/// assert_eq!(records[0].0, DriveId(12));
/// assert_eq!(records[0].1.hour, 3);
/// assert_eq!(records[0].1.values[11], 12.0);
/// # Ok::<(), dds_monitor::wire::WireError>(())
/// ```
pub fn parse_csv_chunk(text: &str) -> Result<Vec<(DriveId, HealthRecord)>, WireError> {
    let mut records = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |reason: String| WireError::BadCsvLine { line: index + 1, reason };
        let mut fields = line.split(',');
        let drive = fields
            .next()
            .and_then(|f| f.trim().parse::<u32>().ok())
            .ok_or_else(|| bad("drive id is not a u32".to_string()))?;
        let hour = fields
            .next()
            .and_then(|f| f.trim().parse::<u32>().ok())
            .ok_or_else(|| bad("hour is not a u32".to_string()))?;
        let mut values = [0.0; NUM_ATTRIBUTES];
        for (column, value) in values.iter_mut().enumerate() {
            *value = fields
                .next()
                .and_then(|f| f.trim().parse::<f64>().ok())
                .ok_or_else(|| bad(format!("attribute column {column} missing or non-numeric")))?;
        }
        if fields.next().is_some() {
            return Err(bad(format!("more than {} fields", 2 + NUM_ATTRIBUTES)));
        }
        records.push((DriveId(drive), HealthRecord { hour, values }));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u32) -> Vec<(DriveId, HealthRecord)> {
        (0..n)
            .map(|i| {
                let mut values = [0.0; NUM_ATTRIBUTES];
                for (c, v) in values.iter_mut().enumerate() {
                    *v = i as f64 * 0.25 + c as f64;
                }
                (DriveId(i * 3), HealthRecord { hour: i, values })
            })
            .collect()
    }

    #[test]
    fn binary_round_trip_is_bit_identical() {
        let mut batch = sample(100);
        batch[7].1.values[2] = f64::NAN;
        batch[9].1.values[5] = 65_535.0;
        batch[11].1.values[0] = -0.0;
        let bytes = encode_batch(&batch);
        assert_eq!(bytes.len(), BATCH_HEADER_BYTES + 100 * RECORD_WIRE_BYTES);
        let decoded = decode_batch(&bytes).unwrap();
        assert_eq!(decoded.len(), batch.len());
        for ((da, ra), (db, rb)) in batch.iter().zip(&decoded) {
            assert_eq!(da, db);
            assert_eq!(ra.hour, rb.hour);
            for (x, y) in ra.values.iter().zip(&rb.values) {
                assert_eq!(x.to_bits(), y.to_bits(), "floats must survive bitwise");
            }
        }
        assert!(looks_binary(&bytes));
        assert!(!looks_binary(b"12,0,1,2"));
    }

    #[test]
    fn corrupt_batches_fail_with_typed_errors() {
        let bytes = encode_batch(&sample(4));
        assert_eq!(decode_batch(b"nope"), Err(WireError::BadMagic));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert_eq!(decode_batch(&wrong_version), Err(WireError::UnsupportedVersion(9)));
        let truncated = &bytes[..bytes.len() - 10];
        assert!(matches!(decode_batch(truncated), Err(WireError::Truncated { .. })));
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(decode_batch(&padded), Err(WireError::Truncated { .. })));
        // An empty batch is legal.
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn adversarial_declared_counts_are_rejected_without_panicking() {
        // A maximal declared count over a tiny body: the size math must
        // report truncation, never wrap or allocate for 4 billion
        // records.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BATCH_MAGIC);
        bytes.push(BATCH_VERSION);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(matches!(decode_batch(&bytes), Err(WireError::Truncated { .. })));
        // A header alone (count 1, zero record bytes) is truncated too.
        let mut header_only = Vec::new();
        header_only.extend_from_slice(&BATCH_MAGIC);
        header_only.push(BATCH_VERSION);
        header_only.extend_from_slice(&1u32.to_le_bytes());
        assert!(matches!(decode_batch(&header_only), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn csv_chunk_round_trips_and_rejects_malformed_lines() {
        let batch = sample(5);
        let mut chunk = String::from("# header comment\n\n");
        for (drive, record) in &batch {
            chunk.push_str(&format!("{},{}", drive.0, record.hour));
            for v in &record.values {
                chunk.push_str(&format!(",{v}"));
            }
            chunk.push('\n');
        }
        assert_eq!(parse_csv_chunk(&chunk).unwrap(), batch);

        let short = "1,2,3\n";
        assert!(matches!(parse_csv_chunk(short), Err(WireError::BadCsvLine { line: 1, .. })));
        let wide = format!("1,2{}\n", ",9".repeat(NUM_ATTRIBUTES + 1));
        assert!(matches!(parse_csv_chunk(&wide), Err(WireError::BadCsvLine { .. })));
        let garbage = "banana,2,1,2,3,4,5,6,7,8,9,10,11,12\n";
        let err = parse_csv_chunk(garbage).unwrap_err();
        assert!(err.to_string().contains("drive id"), "{err}");
    }

    #[test]
    fn csv_nan_values_pass_through_for_the_quality_gate() {
        let chunk = "3,0,NaN,2,3,4,5,6,7,8,9,10,11,12\n";
        let records = parse_csv_chunk(chunk).unwrap();
        assert!(records[0].1.values[0].is_nan());
    }
}
