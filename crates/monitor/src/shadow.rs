//! Shadow scoring: a refit candidate model scores the live stream next
//! to the serving model, silently.
//!
//! Before a candidate is promoted it must earn trust on real traffic.
//! [`ShadowScorer`] wraps the candidate bundle in a fully quiet
//! [`FleetMonitor`] (no gauges, no counters, no history — see
//! [`FleetMonitor::with_quiet_counters`]) and replays every ingest batch
//! the serving path processes. The candidate's alerts are *never
//! emitted*; they are only compared against the serving model's alerts
//! for the same batch, and the disagreement is published as
//! `dds_shadow_*` counters:
//!
//! * `dds_shadow_batches_total` — batches shadow-scored,
//! * `dds_shadow_alerts_serving_total` / `dds_shadow_alerts_candidate_total`
//!   — alert volume on each side,
//! * `dds_shadow_divergence_total` — alerts raised by exactly one side
//!   (symmetric difference on `(hour, drive, severity, kind)`).
//!
//! Zero divergence over a soak window is the promotion criterion for a
//! routine refit; a *deliberate* retrain (new thresholds, new training
//! window after confirmed drift) is expected to diverge, and the
//! counters quantify by how much before the operator commits.

use crate::alert::Alert;
use crate::bundle::ModelBundle;
use crate::monitor::{FleetMonitor, MonitorConfig};
use dds_obs::metrics::Registry;
use dds_smartsim::{DriveId, HealthRecord};
use std::collections::BTreeSet;

/// The identity of an alert for divergence purposes: where, when, how
/// severe and of what kind — but not the free-form message or the exact
/// degradation value, which legitimately differ between two models that
/// agree on the operational outcome.
fn alert_key(alert: &Alert) -> String {
    format!("{}|{}|{}|{}", alert.hour, alert.drive, alert.severity, alert.kind)
}

/// A candidate model silently scoring the serving stream.
#[derive(Debug)]
pub struct ShadowScorer {
    monitor: FleetMonitor,
    batches: u64,
    serving_alerts: u64,
    candidate_alerts: u64,
    divergence: u64,
    /// Publication watermarks: (batches, serving, candidate, divergence).
    published: [u64; 4],
}

impl ShadowScorer {
    /// Wraps a candidate bundle for shadow scoring. The monitor config
    /// should match the serving monitor's, so divergence measures the
    /// *model*, not the escalation ladder.
    pub fn new(bundle: ModelBundle, config: MonitorConfig) -> Self {
        ShadowScorer {
            monitor: FleetMonitor::new(bundle, config).with_quiet_counters(),
            batches: 0,
            serving_alerts: 0,
            candidate_alerts: 0,
            divergence: 0,
            published: [0; 4],
        }
    }

    /// Scores one ingest batch with the candidate and compares against
    /// the alerts the serving model raised for the same batch. Returns
    /// this batch's divergence (alerts raised by exactly one side).
    /// Nothing is emitted: the candidate's alerts die here.
    pub fn score_batch(
        &mut self,
        batch: &[(DriveId, HealthRecord)],
        serving_alerts: &[Alert],
    ) -> u64 {
        self.batches += 1;
        let candidate: Vec<Alert> =
            batch.iter().flat_map(|(drive, record)| self.monitor.ingest(*drive, record)).collect();
        self.serving_alerts += serving_alerts.len() as u64;
        self.candidate_alerts += candidate.len() as u64;

        let serving_keys: BTreeSet<String> = serving_alerts.iter().map(alert_key).collect();
        let candidate_keys: BTreeSet<String> = candidate.iter().map(alert_key).collect();
        let agreed = serving_keys.intersection(&candidate_keys).count() as u64;
        let diverged =
            (serving_keys.len() as u64 - agreed) + (candidate_keys.len() as u64 - agreed);
        self.divergence += diverged;
        diverged
    }

    /// Resets the candidate monitor's per-drive ordering history between
    /// replay epochs — call exactly when the serving monitor gets its
    /// [`FleetMonitor::new_ingest_session`], so both sides see the same
    /// quality-gate verdicts.
    pub fn new_ingest_session(&mut self) {
        self.monitor.new_ingest_session();
    }

    /// Batches shadow-scored so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total alerts raised by exactly one side.
    pub fn divergence(&self) -> u64 {
        self.divergence
    }

    /// Total alerts the candidate would have raised.
    pub fn candidate_alerts(&self) -> u64 {
        self.candidate_alerts
    }

    /// Total alerts the serving side raised on the shadowed batches.
    pub fn serving_alerts(&self) -> u64 {
        self.serving_alerts
    }

    /// Publishes the `dds_shadow_*` counters (monotonic deltas since the
    /// last call).
    pub fn publish(&mut self, registry: &Registry) {
        let now = [self.batches, self.serving_alerts, self.candidate_alerts, self.divergence];
        let names = [
            "dds_shadow_batches_total",
            "dds_shadow_alerts_serving_total",
            "dds_shadow_alerts_candidate_total",
            "dds_shadow_divergence_total",
        ];
        for ((name, value), published) in names.iter().zip(now).zip(&mut self.published) {
            registry.counter(name).add(value - *published);
            *published = value;
        }
    }

    /// Serializes the scorer's state as one JSON object (embedded in the
    /// `/drift` endpoint's body when a candidate is soaking).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"batches\": {}, \"serving_alerts\": {}, \"candidate_alerts\": {}, \
             \"divergence\": {}}}",
            self.batches, self.serving_alerts, self.candidate_alerts, self.divergence,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_core::{Analysis, AnalysisConfig, CategorizationConfig};
    use dds_smartsim::stream::hour_ordered;
    use dds_smartsim::{FleetConfig, FleetSimulator};

    fn bundle(seed: u64) -> ModelBundle {
        let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(seed)).run();
        let config = AnalysisConfig {
            categorization: CategorizationConfig { run_svc: false, ..Default::default() },
            ..Default::default()
        };
        let report = Analysis::new(config).run(&dataset).unwrap();
        ModelBundle::from_analysis(&dataset, &report)
    }

    #[test]
    fn identical_candidate_never_diverges() {
        let serving_bundle = bundle(5_001);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(5_002)).run();
        let records = hour_ordered(&live);

        // Both sides quiet: unit tests share the process-global registry
        // with the rest of the suite, so nothing here may count into it.
        // (The no-inflation property itself is pinned by the integration
        // suite, which owns its test binary's registry.)
        let mut serving = FleetMonitor::new(serving_bundle.clone(), MonitorConfig::default())
            .with_quiet_counters();
        let mut shadow = ShadowScorer::new(serving_bundle, MonitorConfig::default());

        let mut total_serving_alerts = 0u64;
        for batch in records.chunks(256) {
            let alerts: Vec<Alert> =
                batch.iter().flat_map(|(d, r)| serving.ingest(*d, r)).collect();
            total_serving_alerts += alerts.len() as u64;
            assert_eq!(shadow.score_batch(batch, &alerts), 0, "same model cannot diverge");
        }
        assert_eq!(shadow.divergence(), 0);
        assert_eq!(shadow.candidate_alerts(), total_serving_alerts);
        assert!(total_serving_alerts > 0, "the live fleet must raise some alerts");
    }

    #[test]
    fn different_candidate_diverges_and_publishes_counters() {
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(5_003)).run();
        let records = hour_ordered(&live);

        let mut serving =
            FleetMonitor::new(bundle(5_001), MonitorConfig::default()).with_quiet_counters();
        // A candidate trained on a different fleet scores differently
        // somewhere in a full epoch.
        let mut shadow = ShadowScorer::new(bundle(5_004), MonitorConfig::default());
        for batch in records.chunks(512) {
            let alerts: Vec<Alert> =
                batch.iter().flat_map(|(d, r)| serving.ingest(*d, r)).collect();
            shadow.score_batch(batch, &alerts);
        }
        assert!(shadow.divergence() > 0, "cross-fleet candidates must disagree somewhere");
        assert!(shadow.batches() > 0);

        let registry = Registry::new();
        shadow.publish(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("dds_shadow_batches_total"), Some(shadow.batches()));
        assert_eq!(snap.counter_value("dds_shadow_divergence_total"), Some(shadow.divergence()));
        assert_eq!(
            snap.counter_value("dds_shadow_alerts_serving_total"),
            Some(shadow.serving_alerts())
        );
        assert_eq!(
            snap.counter_value("dds_shadow_alerts_candidate_total"),
            Some(shadow.candidate_alerts())
        );

        // Publishing twice adds nothing new.
        shadow.publish(&registry);
        let again = registry.snapshot();
        assert_eq!(again.counter_value("dds_shadow_divergence_total"), Some(shadow.divergence()));

        let json = shadow.to_json();
        for key in ["\"batches\"", "\"serving_alerts\"", "\"candidate_alerts\"", "\"divergence\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
