//! A bounded, shareable history of emitted alerts.
//!
//! The monitor's metrics count alerts but forget them; the `/alerts`
//! endpoint needs the alerts themselves. [`AlertHistory`] keeps the most
//! recent `capacity` alerts in a ring buffer behind a mutex (alerts are
//! emitted at most a few per ingested record, so contention is nil) plus
//! a lifetime total, and is shared `Arc`-style between the ingesting
//! [`FleetMonitor`](crate::FleetMonitor) and the scrape server's handler
//! threads.

use crate::alert::Alert;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default retained-alert capacity for serving setups.
pub const DEFAULT_HISTORY_CAPACITY: usize = 1024;

/// A bounded ring buffer of the most recent alerts.
#[derive(Debug)]
pub struct AlertHistory {
    capacity: usize,
    total: AtomicU64,
    alerts: Mutex<VecDeque<Alert>>,
}

impl Default for AlertHistory {
    fn default() -> Self {
        AlertHistory::new(DEFAULT_HISTORY_CAPACITY)
    }
}

impl AlertHistory {
    /// Creates a history retaining the most recent `capacity` alerts
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        AlertHistory {
            capacity: capacity.max(1),
            total: AtomicU64::new(0),
            alerts: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends one alert, evicting the oldest when full.
    pub fn record(&self, alert: &Alert) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut alerts) = self.alerts.lock() {
            if alerts.len() == self.capacity {
                alerts.pop_front();
            }
            alerts.push_back(alert.clone());
        }
    }

    /// The lifetime number of alerts recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Number of currently retained alerts.
    pub fn len(&self) -> usize {
        self.alerts.lock().map(|a| a.len()).unwrap_or(0)
    }

    /// Whether no alert was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent `n` alerts, newest first.
    pub fn recent(&self, n: usize) -> Vec<Alert> {
        self.alerts
            .lock()
            .map(|alerts| alerts.iter().rev().take(n).cloned().collect())
            .unwrap_or_default()
    }

    /// The most recent `n` alerts as a JSON document:
    /// `{"total": …, "returned": …, "alerts": […]}` with rows newest first.
    pub fn to_json(&self, n: usize) -> String {
        let recent = self.recent(n);
        let rows: Vec<String> = recent.iter().map(Alert::to_json).collect();
        format!(
            "{{\"total\": {}, \"returned\": {}, \"alerts\": [{}]}}",
            self.total(),
            rows.len(),
            rows.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{AlertKind, Severity};
    use dds_smartsim::DriveId;

    fn alert(hour: u32) -> Alert {
        Alert {
            drive: DriveId(1),
            hour,
            severity: Severity::Watch,
            kind: AlertKind::ThermalRisk,
            suspected_type: dds_core::FailureType::Logical,
            degradation: f64::NAN,
            estimated_remaining_hours: None,
            message: format!("alert at hour {hour}"),
        }
    }

    #[test]
    fn keeps_newest_and_counts_all() {
        let history = AlertHistory::new(3);
        assert!(history.is_empty());
        for hour in 0..10 {
            history.record(&alert(hour));
        }
        assert_eq!(history.total(), 10);
        assert_eq!(history.len(), 3);
        let recent = history.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].hour, 9, "newest first");
        assert_eq!(recent[1].hour, 8);
    }

    #[test]
    fn json_is_well_formed_and_nan_degradation_is_null() {
        let history = AlertHistory::new(8);
        history.record(&alert(5));
        let json = history.to_json(10);
        dds_obs::json::validate(&json).expect("alert history JSON");
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\"degradation\": null"));
        assert!(json.contains("thermal_risk"));
    }
}
