//! The deployable model artifact: everything the monitor needs from a
//! training run, detached from the training dataset.

use dds_core::{AnalysisReport, FailureType, ModelError, TrainedModel};
use dds_regtree::RegressionTree;
use dds_smartsim::{Attribute, Dataset, HealthRecord, NUM_ATTRIBUTES};
use dds_stats::{MinMaxScaler, SignatureModel};

/// The vendor "rate" attributes whose healthy values differ unit-to-unit;
/// the monitor re-centers them per drive (see
/// [`FleetMonitor`](crate::FleetMonitor)). Temperature is deliberately
/// excluded — an absolutely hot drive is the §V-A logical-failure signal.
pub const BASELINE_ATTRIBUTES: [Attribute; 4] = [
    Attribute::RawReadErrorRate,
    Attribute::SeekErrorRate,
    Attribute::HardwareEccRecovered,
    Attribute::SpinUpTime,
];

/// One failure group's deployable model: type, degradation predictor and
/// signature.
#[derive(Debug, Clone)]
pub struct GroupModel {
    /// The failure type this model covers.
    pub failure_type: FailureType,
    /// The trained §V-B regression tree.
    pub tree: RegressionTree,
    /// The group's degradation signature (for remaining-time inversion).
    pub signature: SignatureModel,
    /// Test-set RMSE recorded at training time (Table III) — the
    /// baseline the RMSE drift channel compares live scores against.
    pub rmse: f64,
}

/// The deployable bundle: normalization bounds plus one [`GroupModel`] per
/// failure type discovered in training.
///
/// Build it once per training fleet with [`ModelBundle::from_analysis`];
/// it owns copies of everything, so the training dataset can be dropped.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    scaler: MinMaxScaler,
    groups: Vec<GroupModel>,
    /// Mean raw value of each attribute over the training fleet's good
    /// records — the re-centering target for unit-to-unit baseline
    /// correction.
    population_means: [f64; NUM_ATTRIBUTES],
    /// Standard deviation of the good population's `TC` health values —
    /// the yardstick of the thermal-risk check.
    tc_std: f64,
}

impl ModelBundle {
    /// Extracts the bundle from a completed analysis of a training fleet.
    pub fn from_analysis(dataset: &Dataset, report: &AnalysisReport) -> Self {
        let groups = report
            .prediction
            .groups
            .iter()
            .map(|g| GroupModel {
                failure_type: report.categorization.groups()[g.group_index].failure_type,
                tree: g.tree.clone(),
                signature: g.signature,
                rmse: g.rmse,
            })
            .collect();
        let mut population_means = [0.0; NUM_ATTRIBUTES];
        let mut count = 0u64;
        for drive in dataset.good_drives() {
            for record in drive.records() {
                count += 1;
                for (mean, v) in population_means.iter_mut().zip(&record.values) {
                    *mean += v;
                }
            }
        }
        if count > 0 {
            for mean in &mut population_means {
                *mean /= count as f64;
            }
        }
        let tc_idx = Attribute::TemperatureCelsius.index();
        let mut tc_var = 0.0;
        for drive in dataset.good_drives() {
            for record in drive.records() {
                let d = record.values[tc_idx] - population_means[tc_idx];
                tc_var += d * d;
            }
        }
        let tc_std = if count > 0 { (tc_var / count as f64).sqrt() } else { 0.0 };
        ModelBundle { scaler: dataset.scaler().clone(), groups, population_means, tc_std }
    }

    /// Rebuilds the bundle from a saved [`TrainedModel`] artifact — the
    /// warm-start path. The artifact carries the identical scaler bounds,
    /// trees, signatures, population means and `TC` deviation the training
    /// run produced, so a warm-started monitor behaves bit-for-bit like a
    /// cold-started one.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Malformed`] when the artifact's scaler
    /// bounds are inconsistent.
    pub fn from_trained(model: &TrainedModel) -> Result<Self, ModelError> {
        let scaler = model.scaler()?;
        let groups = model
            .groups
            .iter()
            .map(|g| GroupModel {
                failure_type: g.failure_type,
                tree: g.tree.clone(),
                signature: g.signature,
                rmse: g.rmse,
            })
            .collect();
        Ok(ModelBundle {
            scaler,
            groups,
            population_means: model.population_means,
            tc_std: model.tc_std,
        })
    }

    /// Builds a bundle directly from parts (e.g. models trained elsewhere).
    pub fn new(
        scaler: MinMaxScaler,
        groups: Vec<GroupModel>,
        population_means: [f64; NUM_ATTRIBUTES],
        tc_std: f64,
    ) -> Self {
        ModelBundle { scaler, groups, population_means, tc_std }
    }

    /// The training fleet's mean raw attribute values over good records.
    pub fn population_means(&self) -> &[f64; NUM_ATTRIBUTES] {
        &self.population_means
    }

    /// Standard deviation of good-population `TC` health values.
    pub fn tc_std(&self) -> f64 {
        self.tc_std
    }

    /// The per-type models.
    pub fn groups(&self) -> &[GroupModel] {
        &self.groups
    }

    /// The training fleet's Eq. (1) normalization bounds.
    pub fn scaler(&self) -> &MinMaxScaler {
        &self.scaler
    }

    /// Normalizes a live record with the *training* bounds (values outside
    /// the training range extrapolate, which is exactly what a deployed
    /// scaler must do).
    pub fn normalize(&self, record: &HealthRecord) -> [f64; NUM_ATTRIBUTES] {
        let mut out = [0.0; NUM_ATTRIBUTES];
        for (c, slot) in out.iter_mut().enumerate() {
            *slot = self.scaler.transform_value(c, record.values[c]);
        }
        out
    }

    /// Scores a normalized record with every group model and returns the
    /// most pessimistic `(group index, predicted degradation)`. A NaN
    /// prediction (impossible from a tree fit on finite data, but this
    /// sits downstream of the untrusted ingest path) sorts as equal
    /// rather than panicking the worker.
    pub fn worst_prediction(&self, normalized: &[f64]) -> Option<(usize, f64)> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| (i, g.tree.predict(normalized)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_core::{Analysis, AnalysisConfig, CategorizationConfig};
    use dds_smartsim::{FleetConfig, FleetSimulator};

    fn bundle() -> (Dataset, ModelBundle) {
        let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(8_001)).run();
        let config = AnalysisConfig {
            categorization: CategorizationConfig { run_svc: false, ..Default::default() },
            ..Default::default()
        };
        let report = Analysis::new(config).run(&dataset).unwrap();
        let bundle = ModelBundle::from_analysis(&dataset, &report);
        (dataset, bundle)
    }

    #[test]
    fn bundle_covers_every_group() {
        let (_, bundle) = bundle();
        assert_eq!(bundle.groups().len(), 3);
        let types: Vec<FailureType> = bundle.groups().iter().map(|g| g.failure_type).collect();
        assert!(types.contains(&FailureType::Logical));
        assert!(types.contains(&FailureType::BadSector));
        assert!(types.contains(&FailureType::HeadWear));
    }

    #[test]
    fn normalization_matches_training_dataset() {
        let (dataset, bundle) = bundle();
        let drive = dataset.failed_drives().next().unwrap();
        let record = drive.records().last().unwrap();
        assert_eq!(bundle.normalize(record), dataset.normalize_record(record));
    }

    #[test]
    fn from_trained_matches_from_analysis_bitwise() {
        use dds_core::TrainingContext;
        let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(8_001)).run();
        let config = AnalysisConfig {
            categorization: CategorizationConfig { run_svc: false, ..Default::default() },
            ..Default::default()
        };
        let ctx = TrainingContext { seed: 8_001, scale: "test".into(), git_sha: String::new() };
        let (report, model) = Analysis::new(config).train(&dataset, &ctx).unwrap();
        let cold = ModelBundle::from_analysis(&dataset, &report);
        // Round-trip the artifact through its codec before rebuilding, so
        // this also covers serialization drift.
        let reloaded = TrainedModel::from_bytes(&model.to_bytes().unwrap()).unwrap();
        let warm = ModelBundle::from_trained(&reloaded).unwrap();

        assert_eq!(warm.scaler(), cold.scaler());
        for (w, c) in warm.population_means().iter().zip(cold.population_means()) {
            assert_eq!(w.to_bits(), c.to_bits());
        }
        assert_eq!(warm.tc_std().to_bits(), cold.tc_std().to_bits());
        assert_eq!(warm.groups().len(), cold.groups().len());
        for (w, c) in warm.groups().iter().zip(cold.groups()) {
            assert_eq!(w.failure_type, c.failure_type);
            assert_eq!(w.signature, c.signature);
            assert_eq!(w.tree, c.tree);
        }
        // And the bundles score records identically.
        let drive = dataset.failed_drives().next().unwrap();
        let record = drive.records().last().unwrap();
        let normalized = warm.normalize(record);
        assert_eq!(normalized, cold.normalize(record));
        let (wg, wv) = warm.worst_prediction(&normalized).unwrap();
        let (cg, cv) = cold.worst_prediction(&normalized).unwrap();
        assert_eq!((wg, wv.to_bits()), (cg, cv.to_bits()));
    }

    #[test]
    fn worst_prediction_flags_failure_records() {
        let (dataset, bundle) = bundle();
        // A bad-sector failure record must score pessimistically under at
        // least one model.
        let drive = dataset
            .failed_drives()
            .find(|d| d.label().failure_mode() == Some(dds_smartsim::FailureMode::BadSector))
            .unwrap();
        let normalized = bundle.normalize(drive.records().last().unwrap());
        let (_, degradation) = bundle.worst_prediction(&normalized).unwrap();
        assert!(degradation < 0.0, "failure record scored {degradation}");
        // A healthy record scores near 1 under every model.
        let good = dataset.good_drives().next().unwrap();
        let normalized = bundle.normalize(&good.records()[0]);
        let (_, degradation) = bundle.worst_prediction(&normalized).unwrap();
        assert!(degradation > 0.3, "good record scored {degradation}");
    }
}
