//! Online SMART monitoring middleware built on disk degradation signatures.
//!
//! §VI of the paper closes with the plan to "build a middleware software
//! that will enhance storage reliability" from the degradation signatures.
//! This crate is that system: train the paper's per-type models once
//! ([`ModelBundle::from_analysis`]), deploy them as a [`FleetMonitor`],
//! and stream hourly SMART records through it. The monitor
//!
//! * normalizes each record with the training fleet's Eq. (1) bounds,
//! * scores it with every failure group's regression tree,
//! * escalates per-drive severity (watch → warning → critical) with
//!   debouncing and one-way hysteresis, and
//! * attaches the suspected failure type and the remaining-time estimate
//!   obtained by inverting that type's degradation signature — the
//!   "available time for data rescue" of §I.
//!
//! For long-lived serving, [`AlertHistory`] retains recent alerts,
//! [`HealthStatus`] summarizes the escalation map, and [`MonitorService`]
//! exposes both (plus the metrics registry and stage profiles) through
//! the zero-dependency scrape server in `dds_obs::http`. At fleet scale,
//! [`ShardedFleetMonitor`] hash-partitions drives across per-shard
//! monitor workers behind a deterministic coordinator (see [`shard`]),
//! fed through the batched `/ingest` endpoint ([`wire`] codecs) and the
//! bounded, load-shedding [`IngestQueue`].
//!
//! # Example
//!
//! ```
//! use dds_core::{Analysis, AnalysisConfig};
//! use dds_monitor::{FleetMonitor, ModelBundle, MonitorConfig};
//! use dds_smartsim::{FleetConfig, FleetSimulator};
//!
//! // Train on one fleet...
//! let training = FleetSimulator::new(FleetConfig::test_scale().with_seed(1)).run();
//! let analysis = Analysis::new(AnalysisConfig::default()).run(&training)?;
//! let bundle = ModelBundle::from_analysis(&training, &analysis);
//!
//! // ...monitor another.
//! let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(2)).run();
//! let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
//! let drive = live.failed_drives().next().unwrap();
//! let mut alerts = Vec::new();
//! for record in drive.records() {
//!     alerts.extend(monitor.ingest(drive.id(), record));
//! }
//! assert!(!alerts.is_empty(), "a failing drive must raise alerts");
//! # Ok::<(), dds_core::AnalysisError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod alert;
mod bundle;
mod drift;
mod history;
mod monitor;
mod service;
mod shadow;
pub mod shard;
pub mod wire;

pub use alert::{Alert, AlertKind, Severity};
pub use bundle::{GroupModel, ModelBundle};
pub use drift::{
    DriftBaseline, DriftDetector, HOUR_ROLLOVER_GAP, RANGE_MARGIN, RMSE_BUDGET_RATIO,
};
pub use history::{AlertHistory, DEFAULT_HISTORY_CAPACITY};
pub use monitor::{FleetMonitor, HealthStatus, MonitorConfig};
pub use service::{ModelSlot, MonitorService, PromotionGate, PromotionOutcome};
pub use shadow::ShadowScorer;
pub use shard::{shard_for, IngestQueue, ShardStatus, ShardedFleetMonitor};
