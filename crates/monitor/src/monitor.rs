//! The streaming fleet monitor.

use crate::alert::{Alert, AlertKind, Severity};
use crate::bundle::{ModelBundle, BASELINE_ATTRIBUTES};
use crate::history::AlertHistory;
use dds_core::predict::ThresholdPolicy;
use dds_core::quality::{DataQualityError, FleetSanitizer, QualityPolicy, QualityStats};
use dds_obs::metrics::{Counter, Gauge, Histogram};
use dds_smartsim::{DriveId, HealthRecord};
use dds_stats::streaming::RunningMoments;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Cached handles into the global metrics registry for the monitor's
/// counters and gauges, resolved once per [`FleetMonitor`] so the ingest
/// hot path pays only relaxed atomic updates.
///
/// Metric names follow the workspace scheme (`DESIGN.md`):
/// `dds_monitor_records_ingested_total`, `dds_monitor_alerts_total`,
/// per-kind and per-severity alert counters, and gauges for tracked and
/// latched drives. The gauges describe the most recently active monitor —
/// concurrent monitors in one process overwrite each other's gauge values.
#[derive(Debug, Clone)]
struct MonitorMetrics {
    records: Arc<Counter>,
    alerts: Arc<Counter>,
    by_kind: [Arc<Counter>; 4],
    by_severity: [Arc<Counter>; 3],
    drives_tracked: Arc<Gauge>,
    latched: [Arc<Gauge>; 3],
    ingest_seconds: Arc<Histogram>,
}

const KIND_ORDER: [AlertKind; 4] = [
    AlertKind::DegradationPrediction,
    AlertKind::VendorThreshold,
    AlertKind::ThermalRisk,
    AlertKind::TypeReclassification,
];

const SEVERITY_ORDER: [Severity; 3] = [Severity::Watch, Severity::Warning, Severity::Critical];

fn kind_index(kind: AlertKind) -> usize {
    KIND_ORDER.iter().position(|&k| k == kind).expect("all kinds listed")
}

fn severity_index(severity: Severity) -> usize {
    SEVERITY_ORDER.iter().position(|&s| s == severity).expect("all severities listed")
}

impl MonitorMetrics {
    fn new() -> Self {
        let registry = dds_obs::metrics::global();
        MonitorMetrics {
            records: registry.counter("dds_monitor_records_ingested_total"),
            alerts: registry.counter("dds_monitor_alerts_total"),
            by_kind: [
                registry.counter("dds_monitor_alerts_degradation_prediction_total"),
                registry.counter("dds_monitor_alerts_vendor_threshold_total"),
                registry.counter("dds_monitor_alerts_thermal_risk_total"),
                registry.counter("dds_monitor_alerts_type_reclassification_total"),
            ],
            by_severity: [
                registry.counter("dds_monitor_alerts_watch_total"),
                registry.counter("dds_monitor_alerts_warning_total"),
                registry.counter("dds_monitor_alerts_critical_total"),
            ],
            drives_tracked: registry.gauge("dds_monitor_drives_tracked"),
            latched: [
                registry.gauge("dds_monitor_drives_latched_watch"),
                registry.gauge("dds_monitor_drives_latched_warning"),
                registry.gauge("dds_monitor_drives_latched_critical"),
            ],
            ingest_seconds: registry.histogram("dds_monitor_ingest_seconds"),
        }
    }

    fn count_alerts(&self, alerts: &[Alert]) {
        for alert in alerts {
            self.alerts.inc();
            self.by_kind[kind_index(alert.kind)].inc();
            self.by_severity[severity_index(alert.severity)].inc();
        }
    }
}

/// Configuration of the escalation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Predicted degradation below this raises a watch.
    pub watch_level: f64,
    /// Predicted degradation below this raises a warning.
    pub warning_level: f64,
    /// Predicted degradation below this raises a critical alert.
    pub critical_level: f64,
    /// Consecutive breaching hours required before a level latches.
    pub debounce_hours: usize,
    /// Hours of history used to learn each drive's vendor baselines for
    /// the rate attributes (unit-to-unit spread correction); 0 disables
    /// the correction.
    pub baseline_hours: usize,
    /// Thermal-risk threshold: a watch alert fires when a drive's mean `TC`
    /// health over the baseline window sits this many good-population
    /// standard deviations below the mean (§V-A's hot logical-failure
    /// cohort). 0 disables the check.
    pub thermal_sigma: f64,
    /// Vendor threshold policy checked alongside the predictor (emits
    /// critical alerts directly).
    pub thresholds: ThresholdPolicy,
    /// Data-quality gate limits applied to every record before scoring:
    /// ordering faults quarantine, missing values (NaN/sentinel) are
    /// LOCF-imputed up to the policy's caps.
    pub quality: QualityPolicy,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            watch_level: 0.5,
            warning_level: 0.0,
            critical_level: -0.5,
            debounce_hours: 2,
            baseline_hours: 24,
            thermal_sigma: 3.0,
            thresholds: ThresholdPolicy::vendor_conservative(),
            quality: QualityPolicy::default(),
        }
    }
}

impl MonitorConfig {
    /// The severity for a predicted degradation value, if any level is
    /// breached.
    fn severity_for(&self, degradation: f64) -> Option<Severity> {
        if degradation < self.critical_level {
            Some(Severity::Critical)
        } else if degradation < self.warning_level {
            Some(Severity::Warning)
        } else if degradation < self.watch_level {
            Some(Severity::Watch)
        } else {
            None
        }
    }
}

/// Per-drive escalation state.
#[derive(Debug, Clone, Default)]
struct DriveState {
    /// Consecutive hours at (at least) each candidate severity.
    run_len: usize,
    /// The severity of the current breach run.
    run_severity: Option<Severity>,
    /// Highest severity already alerted (one-way hysteresis).
    latched: Option<Severity>,
    /// Whether a vendor-threshold alert was already emitted.
    threshold_alerted: bool,
    /// Failure types already announced through prediction or
    /// reclassification alerts (at most one alert per type per drive).
    announced_types: Vec<dds_core::FailureType>,
    /// Whether a thermal-risk alert was already emitted.
    thermal_alerted: bool,
    /// Per-attribute baseline accumulators for the rate attributes
    /// (aligned with [`BASELINE_ATTRIBUTES`]).
    baselines: [RunningMoments; 4],
    /// Running `TC` statistics for the thermal-risk check.
    tc_moments: RunningMoments,
}

/// A streaming monitor over a fleet of drives.
///
/// Feed hourly records in any drive interleaving; state is kept per drive.
/// Alerts only escalate (watch → warning → critical per drive); recoveries
/// reset the debounce run but never un-latch an emitted severity, so a
/// flapping drive cannot spam the operator.
#[derive(Debug, Clone)]
pub struct FleetMonitor {
    bundle: ModelBundle,
    config: MonitorConfig,
    drives: HashMap<DriveId, DriveState>,
    metrics: MonitorMetrics,
    history: Option<Arc<AlertHistory>>,
    sanitizer: FleetSanitizer,
    /// Whether this monitor writes the shared `dds_monitor_*` gauges.
    /// Shard workers run quiet — N monitors racing on one process-global
    /// gauge would clobber each other — and the shard coordinator
    /// publishes the fleet-wide aggregate instead.
    gauges: bool,
    /// Whether this monitor writes the shared `dds_monitor_*` counters
    /// and histograms. Shadow scorers run fully silent: a candidate
    /// model double-scoring the same stream must not inflate the ingest
    /// and alert totals the watchdog budgets are computed from.
    counters: bool,
}

/// A point-in-time summary of the monitor's serving state, derived from
/// the per-drive escalation map (not from global metrics, so concurrent
/// monitors in one process do not bleed into each other's summaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthStatus {
    /// Number of drives with monitoring state.
    pub drives_tracked: usize,
    /// Drives currently latched at each severity (watch, warning,
    /// critical).
    pub latched: [usize; 3],
    /// Lifetime alerts recorded in the attached history (0 without one).
    pub alerts_emitted: u64,
}

impl HealthStatus {
    /// Serializes the summary as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"drives_tracked\": {}, \"latched_watch\": {}, \"latched_warning\": {}, \
             \"latched_critical\": {}, \"alerts_emitted\": {}}}",
            self.drives_tracked,
            self.latched[0],
            self.latched[1],
            self.latched[2],
            self.alerts_emitted,
        )
    }
}

impl FleetMonitor {
    /// Creates a monitor from a deployable bundle.
    pub fn new(bundle: ModelBundle, config: MonitorConfig) -> Self {
        let sanitizer = FleetSanitizer::new(config.quality);
        FleetMonitor {
            bundle,
            config,
            drives: HashMap::new(),
            metrics: MonitorMetrics::new(),
            history: None,
            sanitizer,
            gauges: true,
            counters: true,
        }
    }

    /// Stops this monitor from writing the process-global
    /// `dds_monitor_drives_tracked` / `dds_monitor_drives_latched_*`
    /// gauges. Counters and histograms (which are additive across
    /// monitors) are unaffected. Used by sharded serving, where the
    /// coordinator owns the aggregate gauge values.
    #[must_use]
    pub fn with_quiet_gauges(mut self) -> Self {
        self.gauges = false;
        self
    }

    /// Stops this monitor from writing the process-global
    /// `dds_monitor_*` counters and histograms as well (implies quiet
    /// gauges). Used by shadow scoring, where a candidate model scores
    /// the same stream the serving model already counted — double
    /// publication would distort every rate the watchdog budgets.
    #[must_use]
    pub fn with_quiet_counters(mut self) -> Self {
        self.gauges = false;
        self.counters = false;
        self
    }

    /// Attaches a shared alert history; every subsequently emitted alert
    /// is recorded into it (serving mode's `/alerts` backing store).
    pub fn with_history(mut self, history: Arc<AlertHistory>) -> Self {
        self.history = Some(history);
        self
    }

    /// Number of drives with monitoring state.
    pub fn drives_tracked(&self) -> usize {
        self.drives.len()
    }

    /// The highest severity already alerted for a drive.
    pub fn latched_severity(&self, drive: DriveId) -> Option<Severity> {
        self.drives.get(&drive).and_then(|s| s.latched)
    }

    /// The current serving-state summary.
    pub fn health_status(&self) -> HealthStatus {
        let mut latched = [0usize; 3];
        for state in self.drives.values() {
            if let Some(severity) = state.latched {
                latched[severity_index(severity)] += 1;
            }
        }
        HealthStatus {
            drives_tracked: self.drives.len(),
            latched,
            alerts_emitted: self.history.as_ref().map_or(0, |h| h.total()),
        }
    }

    /// Ingests one hourly record, returning any alerts it triggers
    /// (at most one prediction alert and one threshold alert).
    ///
    /// The vendor "rate" attributes carry unit-to-unit baseline spread;
    /// after `baseline_hours` of history the monitor re-centers them on the
    /// training population's means before scoring, so a drive whose healthy
    /// RRER sits high does not hide a depression from the models. Absolute
    /// attributes (temperature, counters, age) are never corrected.
    ///
    /// # Example
    ///
    /// Train on one fleet, then stream another fleet's failing drives
    /// record by record:
    ///
    /// ```
    /// use dds_core::{Analysis, AnalysisConfig};
    /// use dds_monitor::{FleetMonitor, ModelBundle, MonitorConfig};
    /// use dds_smartsim::{FleetConfig, FleetSimulator};
    ///
    /// let training = FleetSimulator::new(FleetConfig::test_scale().with_seed(1)).run();
    /// let report = Analysis::new(AnalysisConfig::default()).run(&training)?;
    /// let bundle = ModelBundle::from_analysis(&training, &report);
    /// let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
    ///
    /// let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(2)).run();
    /// let mut alerts = Vec::new();
    /// for drive in live.failed_drives() {
    ///     for record in drive.records() {
    ///         alerts.extend(monitor.ingest(drive.id(), record));
    ///     }
    /// }
    /// assert!(!alerts.is_empty(), "failing drives raise alerts before their end");
    /// # Ok::<(), dds_core::AnalysisError>(())
    /// ```
    ///
    /// Records that fail the data-quality gate (out-of-order hours,
    /// duplicates, unimputably missing attributes) are quarantined and
    /// yield no alerts; use [`FleetMonitor::try_ingest`] to observe the
    /// typed rejection.
    pub fn ingest(&mut self, drive: DriveId, record: &HealthRecord) -> Vec<Alert> {
        self.try_ingest(drive, record).unwrap_or_default()
    }

    /// Like [`FleetMonitor::ingest`], but surfaces the quality-gate verdict:
    /// `Err` means the record was quarantined (and counted in
    /// [`FleetMonitor::quality_stats`]) without touching any drive state.
    pub fn try_ingest(
        &mut self,
        drive: DriveId,
        record: &HealthRecord,
    ) -> Result<Vec<Alert>, DataQualityError> {
        // Quarantined records must not reach `records_ingested_total`:
        // the watchdog's quarantine budget treats that counter as the
        // accepted-record denominator.
        let cleaned = self.sanitize(drive, record)?;
        Ok(self.ingest_sanitized(drive, &cleaned))
    }

    /// The quality-gate stage of [`FleetMonitor::try_ingest`] on its own:
    /// admits (possibly repairing) one record or quarantines it with a
    /// typed rejection, without touching any scoring state. Callers that
    /// need per-stage timing (the sharded serving path's flight recorder)
    /// run this and [`FleetMonitor::ingest_sanitized`] separately;
    /// `try_ingest` is exactly their composition.
    pub fn sanitize(
        &mut self,
        drive: DriveId,
        record: &HealthRecord,
    ) -> Result<HealthRecord, DataQualityError> {
        self.sanitizer.admit(drive, record)
    }

    /// The scoring stage of [`FleetMonitor::try_ingest`]: ingests a
    /// record that already passed [`FleetMonitor::sanitize`]. Feeding a
    /// record that skipped the gate corrupts the quality accounting the
    /// watchdog budgets are built on — always pair the two stages.
    pub fn ingest_sanitized(&mut self, drive: DriveId, record: &HealthRecord) -> Vec<Alert> {
        let _span = dds_obs::span!(dds_obs::Level::Trace, "monitor.ingest", hour = record.hour);
        let started = Instant::now();
        let latched_before = self.latched_severity(drive);
        let alerts = self.ingest_inner(drive, record);
        let latched_after = self.latched_severity(drive);
        if self.counters {
            self.metrics.ingest_seconds.observe(started.elapsed().as_secs_f64());
            self.metrics.records.inc();
            self.metrics.count_alerts(&alerts);
        }
        if let Some(history) = &self.history {
            for alert in &alerts {
                history.record(alert);
            }
        }
        if self.gauges {
            self.metrics.drives_tracked.set(self.drives.len() as f64);
            if latched_before != latched_after {
                if let Some(old) = latched_before {
                    self.metrics.latched[severity_index(old)].add(-1.0);
                }
                if let Some(new) = latched_after {
                    self.metrics.latched[severity_index(new)].add(1.0);
                }
            }
        }
        alerts
    }

    fn ingest_inner(&mut self, drive: DriveId, record: &HealthRecord) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let state = self.drives.entry(drive).or_default();

        // --- unit-to-unit baseline correction -----------------------------
        let mut corrected = record.clone();
        if self.config.baseline_hours > 0 {
            for (moments, attr) in state.baselines.iter_mut().zip(BASELINE_ATTRIBUTES) {
                if (moments.count() as usize) < self.config.baseline_hours {
                    moments.push(record.value(attr));
                } else {
                    // Only correct when the learned baseline was *stable*:
                    // a drive already degrading through its baseline window
                    // would otherwise have its anomaly erased.
                    let stable = moments.std_dev().map(|sd| sd < 2.0).unwrap_or(false);
                    if stable {
                        let shift = moments.mean() - self.bundle.population_means()[attr.index()];
                        corrected.values[attr.index()] -= shift;
                    }
                }
            }
        }
        let normalized = self.bundle.normalize(&corrected);
        let record = &corrected;

        // --- thermal-risk check (§V-A: logical failures run hot) ----------
        if self.config.thermal_sigma > 0.0 && !state.thermal_alerted {
            let tc = dds_smartsim::Attribute::TemperatureCelsius;
            state.tc_moments.push(record.value(tc));
            if state.tc_moments.count() as usize >= self.config.baseline_hours.max(1) {
                let pop_mean = self.bundle.population_means()[tc.index()];
                let limit = pop_mean - self.config.thermal_sigma * self.bundle.tc_std().max(1e-9);
                if state.tc_moments.mean() < limit {
                    state.thermal_alerted = true;
                    alerts.push(Alert {
                        drive,
                        hour: record.hour,
                        severity: Severity::Watch,
                        kind: AlertKind::ThermalRisk,
                        suspected_type: dds_core::FailureType::Logical,
                        degradation: f64::NAN,
                        estimated_remaining_hours: None,
                        message: format!(
                            "drive runs hot: mean TC health {:.1} vs population {:.1} (sd {:.1})",
                            state.tc_moments.mean(),
                            pop_mean,
                            self.bundle.tc_std()
                        ),
                    });
                }
            }
        }

        // --- vendor threshold check (direct critical) --------------------
        if !state.threshold_alerted {
            let breached = self
                .config
                .thresholds
                .thresholds
                .iter()
                .find(|&&(attr, min)| record.value(attr) < min);
            if let Some(&(attr, min)) = breached {
                state.threshold_alerted = true;
                alerts.push(Alert {
                    drive,
                    hour: record.hour,
                    severity: Severity::Critical,
                    kind: AlertKind::VendorThreshold,
                    suspected_type: dds_core::FailureType::Unknown,
                    degradation: f64::NAN,
                    estimated_remaining_hours: None,
                    message: format!(
                        "vendor threshold breached: {} = {:.1} < {min:.1}",
                        attr.symbol(),
                        record.value(attr)
                    ),
                });
            }
        }

        // --- degradation predictor ---------------------------------------
        let Some((group_idx, degradation)) = self.bundle.worst_prediction(&normalized) else {
            return alerts;
        };
        let candidate = self.config.severity_for(degradation);
        match candidate {
            Some(severity) => {
                // The debounce run counts consecutive breaching hours at
                // *any* level: a drive that plunges straight through watch
                // and warning must still be able to latch critical.
                state.run_len += 1;
                state.run_severity = Some(severity);
                let debounced = state.run_len >= self.config.debounce_hours.max(1);
                let escalates = state.latched.is_none_or(|latched| severity > latched);
                // Attribute the type with the paper's Table II rules on
                // the record itself (robust), falling back to the
                // worst-scoring model's type; the matching signature
                // supplies the remaining-time estimate.
                let rule_type = dds_core::categorize::classify_normalized_record(&normalized);
                let model = self
                    .bundle
                    .groups()
                    .iter()
                    .find(|g| g.failure_type == rule_type)
                    .unwrap_or(&self.bundle.groups()[group_idx]);
                let remaining = model
                    .signature
                    .time_before_failure(degradation.min(0.0))
                    .filter(|_| degradation <= 0.0);
                if debounced && escalates {
                    state.latched = Some(severity);
                    if !state.announced_types.contains(&model.failure_type) {
                        state.announced_types.push(model.failure_type);
                    }
                    alerts.push(Alert {
                        drive,
                        hour: record.hour,
                        severity,
                        kind: AlertKind::DegradationPrediction,
                        suspected_type: model.failure_type,
                        degradation,
                        estimated_remaining_hours: remaining,
                        message: format!("{} suspected", model.failure_type),
                    });
                } else if debounced
                    && state.latched.is_some()
                    && !state.announced_types.contains(&model.failure_type)
                {
                    // A slow failure can out-live its escalation ladder: the
                    // predictor latches early (often on the trigger-happy
                    // short-window model) while the counters that pin down
                    // the *type* — Table II's RUE / R-RSC profile — only
                    // emerge hours later. Re-announce once per new type so
                    // the revised signature horizon reaches the operator.
                    state.announced_types.push(model.failure_type);
                    alerts.push(Alert {
                        drive,
                        hour: record.hour,
                        severity: state.latched.expect("checked above"),
                        kind: AlertKind::TypeReclassification,
                        suspected_type: model.failure_type,
                        degradation,
                        estimated_remaining_hours: remaining,
                        message: format!("diagnosis revised: {} suspected", model.failure_type),
                    });
                }
            }
            None => {
                state.run_severity = None;
                state.run_len = 0;
            }
        }
        alerts
    }

    /// Replays a whole profile, returning every alert in order — a
    /// convenience for offline evaluation.
    pub fn replay(&mut self, drive: DriveId, records: &[HealthRecord]) -> Vec<Alert> {
        let _span =
            dds_obs::span!(dds_obs::Level::Debug, "monitor.replay", records = records.len());
        let alerts: Vec<Alert> = records.iter().flat_map(|r| self.ingest(drive, r)).collect();
        if !alerts.is_empty() {
            dds_obs::event!(
                dds_obs::Level::Debug,
                "monitor.replay_alerts",
                alerts = alerts.len(),
                worst = alerts.iter().map(|a| a.severity).max().expect("non-empty").to_string(),
            );
        }
        alerts
    }

    /// Cumulative data-quality tallies for everything offered to
    /// [`FleetMonitor::ingest`] / [`FleetMonitor::try_ingest`].
    pub fn quality_stats(&self) -> &QualityStats {
        self.sanitizer.stats()
    }

    /// Resets the quality gate's per-drive ordering history (imputation
    /// state and last-seen hours) without clearing the cumulative stats.
    ///
    /// Call this between replay epochs whose hour counters restart at
    /// zero — otherwise every record of the new epoch would look
    /// out-of-order against the previous epoch's final hours.
    pub fn new_ingest_session(&mut self) {
        self.sanitizer.new_session();
    }

    /// Atomically replaces the deployed model bundle — the hot-swap half
    /// of a promotion.
    ///
    /// All per-drive escalation state (latched severities, debounce
    /// runs, learned baselines, announced types) survives the swap:
    /// promotion changes *how records are scored from now on*, never
    /// what has already been alerted. In particular, promoting a bundle
    /// identical to the serving one leaves the alert stream byte for
    /// byte unchanged.
    pub fn swap_bundle(&mut self, bundle: ModelBundle) {
        self.bundle = bundle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::ModelBundle;
    use dds_core::{Analysis, AnalysisConfig, CategorizationConfig};
    use dds_smartsim::{Dataset, FailureMode, FleetConfig, FleetSimulator};

    fn trained_bundle(seed: u64) -> ModelBundle {
        let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(seed)).run();
        let config = AnalysisConfig {
            categorization: CategorizationConfig { run_svc: false, ..Default::default() },
            ..Default::default()
        };
        let report = Analysis::new(config).run(&dataset).unwrap();
        ModelBundle::from_analysis(&dataset, &report)
    }

    fn live_fleet(seed: u64) -> Dataset {
        FleetSimulator::new(FleetConfig::test_scale().with_seed(seed)).run()
    }

    #[test]
    fn failing_drives_escalate_good_drives_stay_quiet() {
        let bundle = trained_bundle(9_001);
        let live = live_fleet(9_002);
        let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());

        // A cross-fleet generalization test: models trained on seed 9001
        // monitor drives from seed 9002. Expectations are per failure type,
        // mirroring the paper: sector/head failures carry large absolute
        // counter signals (robust across fleets); logical failures look
        // near-good (§IV-B) and are caught early via the thermal channel
        // rather than deep degradation predictions.
        let mut mechanical_critical = 0usize;
        let mut mechanical_total = 0usize;
        let mut logical_alerted = 0usize;
        let mut logical_total = 0usize;
        for drive in live.failed_drives() {
            let alerts = monitor.replay(drive.id(), drive.records());
            match drive.label().failure_mode().unwrap() {
                FailureMode::Logical => {
                    logical_total += 1;
                    if !alerts.is_empty() {
                        logical_alerted += 1;
                    }
                }
                FailureMode::BadSector | FailureMode::HeadWear => {
                    mechanical_total += 1;
                    if alerts.iter().any(|a| a.severity == Severity::Critical) {
                        mechanical_critical += 1;
                    }
                }
            }
        }
        assert!(
            mechanical_critical as f64 / mechanical_total as f64 > 0.9,
            "critical coverage of sector/head failures: {mechanical_critical}/{mechanical_total}"
        );
        // Logical failures are near-good on every counter until the last
        // hours (§IV-B, Table II), so cross-fleet coverage leans on the
        // thermal side channel — and drives whose internal heat is modest
        // sit inside the hot-rack good-drive band, where a more aggressive
        // limit would page on healthy hardware. ~80% coverage with a quiet
        // good fleet is the honest operating point at this scale.
        assert!(
            logical_alerted as f64 / logical_total as f64 > 0.8,
            "alert coverage of logical failures: {logical_alerted}/{logical_total}"
        );

        let mut good_warnings = 0usize;
        let mut good_thermal = 0usize;
        for drive in live.good_drives().take(60) {
            let alerts = monitor.replay(drive.id(), drive.records());
            good_warnings += alerts.iter().filter(|a| a.severity >= Severity::Warning).count();
            good_thermal += alerts.iter().filter(|a| a.kind == AlertKind::ThermalRisk).count();
        }
        assert!(good_warnings <= 3, "good drives raised {good_warnings} warnings+");
        assert!(good_thermal <= 3, "good drives raised {good_thermal} thermal alerts");
    }

    #[test]
    fn thermal_channel_flags_hot_logical_drives_early() {
        let bundle = trained_bundle(9_001);
        let live = live_fleet(9_002);
        let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
        let mut early_flags = 0usize;
        let mut total = 0usize;
        for drive in live.failed_drives() {
            if drive.label().failure_mode() != Some(FailureMode::Logical) {
                continue;
            }
            total += 1;
            let alerts = monitor.replay(drive.id(), drive.records());
            // The thermal flag must arrive within ~the baseline window, i.e.
            // days before the failure, not at the end.
            if let Some(a) = alerts.iter().find(|a| a.kind == AlertKind::ThermalRisk) {
                let first_hour = drive.records().first().unwrap().hour;
                if a.hour.saturating_sub(first_hour) <= 48 {
                    early_flags += 1;
                }
            }
        }
        assert!(
            early_flags as f64 / total as f64 > 0.8,
            "early thermal flags {early_flags}/{total}"
        );
    }

    #[test]
    fn alerts_only_escalate_per_drive() {
        let bundle = trained_bundle(9_003);
        let live = live_fleet(9_004);
        let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
        for drive in live.failed_drives() {
            let alerts = monitor.replay(drive.id(), drive.records());
            let prediction_alerts: Vec<&Alert> =
                alerts.iter().filter(|a| a.kind == AlertKind::DegradationPrediction).collect();
            for pair in prediction_alerts.windows(2) {
                assert!(
                    pair[1].severity > pair[0].severity,
                    "{}: severities must strictly escalate",
                    drive.id()
                );
            }
        }
    }

    #[test]
    fn remaining_time_estimates_shrink_toward_failure() {
        let bundle = trained_bundle(9_005);
        let live = live_fleet(9_006);
        let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
        // Bad-sector drives degrade slowly enough to produce multiple
        // escalations with remaining-time estimates.
        let mut checked = 0;
        for drive in live.failed_drives() {
            if drive.label().failure_mode() != Some(FailureMode::BadSector) {
                continue;
            }
            let alerts = monitor.replay(drive.id(), drive.records());
            // Compare only estimates made under the same suspected type —
            // early records of a slow failure can legitimately be typed
            // differently (and thus use a different signature) than late
            // ones.
            let estimates: Vec<f64> = alerts
                .iter()
                .filter(|a| a.suspected_type == dds_core::FailureType::BadSector)
                .filter_map(|a| a.estimated_remaining_hours)
                .collect();
            for pair in estimates.windows(2) {
                assert!(pair[1] <= pair[0] * 1.5, "estimates should trend down: {estimates:?}");
            }
            if !estimates.is_empty() {
                checked += 1;
            }
        }
        assert!(checked > 0, "at least one bad-sector drive produced estimates");
    }

    #[test]
    fn debouncing_suppresses_single_hour_spikes() {
        let bundle = trained_bundle(9_007);
        let live = live_fleet(9_008);
        let drive = live.failed_drives().next().unwrap();
        // With an absurd debounce the predictor can never latch.
        let config = MonitorConfig { debounce_hours: 10_000, ..MonitorConfig::default() };
        let mut monitor = FleetMonitor::new(trained_bundle(9_007), config);
        let alerts = monitor.replay(drive.id(), drive.records());
        assert!(
            alerts.iter().all(|a| a.kind != AlertKind::DegradationPrediction),
            "prediction alerts cannot fire under infinite debounce"
        );
        let _ = bundle;
    }

    #[test]
    fn tracked_state_and_latched_severity() {
        let bundle = trained_bundle(9_009);
        let live = live_fleet(9_010);
        let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
        assert_eq!(monitor.drives_tracked(), 0);
        // Use a bad-sector drive: its deep counter-driven degradation is
        // guaranteed to latch a severity.
        let drive = live
            .failed_drives()
            .find(|d| d.label().failure_mode() == Some(FailureMode::BadSector))
            .unwrap();
        assert_eq!(monitor.latched_severity(drive.id()), None);
        monitor.replay(drive.id(), drive.records());
        assert_eq!(monitor.drives_tracked(), 1);
        assert!(monitor.latched_severity(drive.id()).is_some());
    }

    #[test]
    fn severity_ladder_is_consistent() {
        let config = MonitorConfig::default();
        assert_eq!(config.severity_for(0.9), None);
        assert_eq!(config.severity_for(0.3), Some(Severity::Watch));
        assert_eq!(config.severity_for(-0.2), Some(Severity::Warning));
        assert_eq!(config.severity_for(-0.8), Some(Severity::Critical));
    }

    #[test]
    fn quality_gate_quarantines_ordering_faults_without_alerting() {
        let bundle = trained_bundle(9_011);
        let live = live_fleet(9_012);
        let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
        let drive = live.good_drives().next().unwrap();
        let records = drive.records();

        assert!(monitor.try_ingest(drive.id(), &records[5]).is_ok());
        // An earlier hour after a later one is un-repairable.
        let err = monitor.try_ingest(drive.id(), &records[2]).unwrap_err();
        assert_eq!(err.reason(), "out_of_order");
        // Re-sending the same hour is a duplicate.
        let dup = records[5].clone();
        let err = monitor.try_ingest(drive.id(), &dup).unwrap_err();
        assert_eq!(err.reason(), "duplicate_hour");
        // The lossy wrapper swallows the rejection and emits nothing.
        assert!(monitor.ingest(drive.id(), &records[2]).is_empty());

        let stats = monitor.quality_stats();
        assert_eq!(stats.ingested, 4);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.quarantined, 3);
        assert_eq!(stats.accepted + stats.quarantined, stats.ingested);
    }

    #[test]
    fn quality_gate_imputes_missing_attributes_in_stream() {
        let bundle = trained_bundle(9_011);
        let live = live_fleet(9_012);
        let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
        let drive = live.good_drives().next().unwrap();

        let mut poisoned = 0usize;
        for (i, record) in drive.records().iter().take(48).enumerate() {
            let mut record = record.clone();
            if i % 7 == 3 {
                record.values[2] = f64::NAN;
                record.values[5] = 65_535.0;
                poisoned += 1;
            }
            monitor.try_ingest(drive.id(), &record).expect("imputable record");
        }
        let stats = monitor.quality_stats();
        assert_eq!(stats.quarantined, 0, "sparse missing values must be repaired, not dropped");
        assert_eq!(stats.imputed_attrs, 2 * poisoned as u64);
        assert_eq!(stats.accepted, 48);
    }

    #[test]
    fn identical_bundle_swap_leaves_the_alert_stream_unchanged() {
        let bundle = trained_bundle(9_013);
        let live = live_fleet(9_014);

        // One uninterrupted replay...
        let mut plain = FleetMonitor::new(bundle.clone(), MonitorConfig::default());
        let mut plain_alerts = Vec::new();
        for drive in live.failed_drives() {
            plain_alerts.extend(plain.replay(drive.id(), drive.records()));
        }

        // ...versus the same replay with an identical-bundle swap before
        // every drive: escalation state survives, so the streams match.
        let mut swapped = FleetMonitor::new(bundle.clone(), MonitorConfig::default());
        let mut swapped_alerts = Vec::new();
        for drive in live.failed_drives() {
            swapped.swap_bundle(bundle.clone());
            swapped_alerts.extend(swapped.replay(drive.id(), drive.records()));
        }

        let render =
            |alerts: &[Alert]| -> Vec<String> { alerts.iter().map(Alert::to_json).collect() };
        assert_eq!(render(&plain_alerts), render(&swapped_alerts));
        assert_eq!(plain.drives_tracked(), swapped.drives_tracked());
    }

    #[test]
    fn new_ingest_session_allows_hour_counters_to_restart() {
        let bundle = trained_bundle(9_011);
        let live = live_fleet(9_012);
        let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
        let drive = live.good_drives().next().unwrap();
        let records = &drive.records()[..10];

        monitor.replay(drive.id(), records);
        assert_eq!(monitor.quality_stats().quarantined, 0);

        // Replaying the same epoch without a session reset looks like a
        // wall of ordering faults...
        monitor.replay(drive.id(), records);
        assert_eq!(monitor.quality_stats().quarantined, records.len() as u64);

        // ...but after a reset the restarted hours are accepted again.
        monitor.new_ingest_session();
        monitor.replay(drive.id(), records);
        assert_eq!(monitor.quality_stats().quarantined, records.len() as u64);
        assert_eq!(monitor.quality_stats().ingested, 3 * records.len() as u64);
    }
}
