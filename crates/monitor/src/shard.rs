//! Sharded serving: hash-partition a fleet across N independent
//! [`FleetMonitor`] workers behind one deterministic coordinator.
//!
//! A single monitor serializes every record through one escalation map —
//! fine for the paper's 23 k drives, a bottleneck at the ROADMAP's
//! millions. [`ShardedFleetMonitor`] splits the fleet by drive id
//! ([`shard_for`], FNV-1a) onto per-shard worker threads, each owning a
//! full `FleetMonitor` (models, sanitizer, escalation state). Because a
//! drive's entire history lands on exactly one shard, per-drive semantics
//! (debounce, hysteresis, quality watermarks) are untouched, and the
//! coordinator's merge — a stable sort by `(hour, drive)` — reproduces
//! the single-monitor alert stream byte for byte at any shard count.
//!
//! [`IngestQueue`] is the bounded intake in front of the coordinator:
//! HTTP batches are queued if there is room and **shed** (counted, 429)
//! if not, so overload degrades the ingest SLO instead of deadlocking the
//! serve loop; the watchdog's shed budget flips `/healthz` when shedding
//! exceeds its ratio.

use crate::alert::Alert;
use crate::bundle::ModelBundle;
use crate::history::AlertHistory;
use crate::monitor::{FleetMonitor, HealthStatus, MonitorConfig};
use dds_core::quality::QualityStats;
use dds_obs::journal::{BatchSpan, FlightRecorder, ShardSpan};
use dds_obs::metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
use dds_smartsim::{DriveId, HealthRecord};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// The shard a drive belongs to, by FNV-1a over the id's little-endian
/// bytes. Stable across runs, platforms and shard-count-preserving
/// restarts: the same `(drive, shards)` always maps to the same shard.
///
/// # Example
///
/// ```
/// use dds_monitor::shard::shard_for;
/// use dds_smartsim::DriveId;
///
/// // One shard degenerates to a single monitor.
/// assert_eq!(shard_for(DriveId(12345), 1), 0);
///
/// // The assignment is a pure function of (drive, shards)...
/// assert_eq!(shard_for(DriveId(7), 8), shard_for(DriveId(7), 8));
///
/// // ...and spreads a contiguous id range over every shard.
/// let mut hit = [false; 4];
/// for id in 0..64 {
///     hit[shard_for(DriveId(id), 4)] = true;
/// }
/// assert_eq!(hit, [true; 4]);
/// ```
pub fn shard_for(drive: DriveId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in drive.0.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    (hash % shards as u64) as usize
}

/// One batch's result from a shard worker, including the span fields the
/// flight recorder assembles into a [`BatchSpan`]. The count fields are
/// always filled (they fall out of the accept/quarantine branch anyway);
/// the stage clocks are only non-zero for timed jobs.
struct ShardBatch {
    alerts: Vec<Alert>,
    records: u64,
    accepted: u64,
    quarantined: u64,
    sanitize_seconds: f64,
    ingest_seconds: f64,
    drives_tracked: usize,
    latched: [usize; 3],
}

/// Point-in-time state of one shard, for the `/shards` endpoint, the
/// per-shard time-series rings behind `/timeseries`, and the scaling
/// handbook's sizing checks.
#[derive(Debug, Clone, Copy)]
pub struct ShardStatus {
    /// Shard index in `0..shards`.
    pub shard: usize,
    /// Drives with escalation state on this shard.
    pub drives_tracked: usize,
    /// Drives latched at (watch, warning, critical) on this shard.
    pub latched: [usize; 3],
    /// This shard's sanitizer tallies.
    pub quality: QualityStats,
    /// Lifetime alerts this shard emitted.
    pub alerts_emitted: u64,
    /// Lifetime batches this shard processed.
    pub batches: u64,
    /// Histogram-compatible bucket counts of this shard's per-batch wall
    /// times (see [`Histogram::bucket_index`]); feeds the per-shard
    /// latency quantiles in [`dds_obs::timeseries::ShardSeriesStore`].
    pub batch_buckets: [u64; HISTOGRAM_BUCKETS],
}

impl ShardStatus {
    /// Serializes the status as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shard\": {}, \"drives_tracked\": {}, \"latched_watch\": {}, \
             \"latched_warning\": {}, \"latched_critical\": {}, \"accepted\": {}, \
             \"quarantined\": {}, \"imputed_attrs\": {}, \"alerts_emitted\": {}, \
             \"batches\": {}}}",
            self.shard,
            self.drives_tracked,
            self.latched[0],
            self.latched[1],
            self.latched[2],
            self.quality.accepted,
            self.quality.quarantined,
            self.quality.imputed_attrs,
            self.alerts_emitted,
            self.batches,
        )
    }
}

enum Job {
    Batch {
        records: Vec<(DriveId, HealthRecord)>,
        /// Whether to run the per-record stage clocks (sanitize/ingest
        /// wall time). Only true when a flight recorder is attached, so
        /// the unattached path pays zero per-record timing overhead.
        timed: bool,
        reply: SyncSender<(usize, ShardBatch)>,
    },
    NewSession {
        reply: SyncSender<()>,
    },
    /// Hot-swap the shard's model bundle (promotion). Boxed: the bundle
    /// carries whole regression trees and would otherwise dominate the
    /// job enum's size for every queued batch.
    SwapBundle {
        bundle: Box<ModelBundle>,
        reply: SyncSender<()>,
    },
    Status {
        reply: SyncSender<ShardStatus>,
    },
}

struct Worker {
    sender: Option<mpsc::Sender<Job>>,
    handle: Option<thread::JoinHandle<()>>,
}

fn worker_loop(shard: usize, bundle: ModelBundle, config: MonitorConfig, jobs: Receiver<Job>) {
    let mut monitor = FleetMonitor::new(bundle, config).with_quiet_gauges();
    // Cheap per-shard lifetime tallies behind `/shards` and the
    // per-shard time-series rings: two clock reads per *batch* (not per
    // record) and a handful of integer adds, so they stay on even when
    // no recorder is attached.
    let mut batches = 0u64;
    let mut batch_buckets = [0u64; HISTOGRAM_BUCKETS];
    let mut alerts_emitted = 0u64;
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Batch { records, timed, reply } => {
                let started = Instant::now();
                let mut alerts = Vec::new();
                let total = records.len() as u64;
                let mut accepted = 0u64;
                let mut quarantined = 0u64;
                let mut sanitize_seconds = 0.0;
                let mut ingest_seconds = 0.0;
                if timed {
                    // Per-record stage clocks for the flight recorder:
                    // same sanitize→ingest composition as `try_ingest`,
                    // with an `Instant` read between the stages.
                    for (drive, record) in &records {
                        let gate = Instant::now();
                        let admitted = monitor.sanitize(*drive, record);
                        sanitize_seconds += gate.elapsed().as_secs_f64();
                        match admitted {
                            Ok(cleaned) => {
                                accepted += 1;
                                let score = Instant::now();
                                alerts.append(&mut monitor.ingest_sanitized(*drive, &cleaned));
                                ingest_seconds += score.elapsed().as_secs_f64();
                            }
                            Err(_) => quarantined += 1,
                        }
                    }
                } else {
                    for (drive, record) in &records {
                        match monitor.try_ingest(*drive, record) {
                            Ok(mut raised) => {
                                accepted += 1;
                                alerts.append(&mut raised);
                            }
                            Err(_) => quarantined += 1,
                        }
                    }
                }
                batches += 1;
                batch_buckets[Histogram::bucket_index(started.elapsed().as_secs_f64())] += 1;
                alerts_emitted += alerts.len() as u64;
                let status = monitor.health_status();
                let _ = reply.send((
                    shard,
                    ShardBatch {
                        alerts,
                        records: total,
                        accepted,
                        quarantined,
                        sanitize_seconds,
                        ingest_seconds,
                        drives_tracked: status.drives_tracked,
                        latched: status.latched,
                    },
                ));
            }
            Job::NewSession { reply } => {
                monitor.new_ingest_session();
                let _ = reply.send(());
            }
            Job::SwapBundle { bundle, reply } => {
                monitor.swap_bundle(*bundle);
                let _ = reply.send(());
            }
            Job::Status { reply } => {
                let status = monitor.health_status();
                let _ = reply.send(ShardStatus {
                    shard,
                    drives_tracked: status.drives_tracked,
                    latched: status.latched,
                    quality: *monitor.quality_stats(),
                    alerts_emitted,
                    batches,
                    batch_buckets,
                });
            }
        }
    }
}

/// Cached handles for the coordinator's aggregate metrics.
#[derive(Debug)]
struct CoordinatorMetrics {
    shards: Arc<Gauge>,
    batch_seconds: Arc<Histogram>,
    drives_tracked: Arc<Gauge>,
    latched: [Arc<Gauge>; 3],
}

impl CoordinatorMetrics {
    fn new() -> Self {
        let registry = dds_obs::metrics::global();
        CoordinatorMetrics {
            shards: registry.gauge("dds_ingest_shards"),
            batch_seconds: registry.histogram("dds_ingest_batch_seconds"),
            drives_tracked: registry.gauge("dds_monitor_drives_tracked"),
            latched: [
                registry.gauge("dds_monitor_drives_latched_watch"),
                registry.gauge("dds_monitor_drives_latched_warning"),
                registry.gauge("dds_monitor_drives_latched_critical"),
            ],
        }
    }
}

/// N per-shard [`FleetMonitor`] workers behind one deterministic
/// fan-out/fan-in coordinator.
///
/// Batches go in ([`ingest_batch`]); the merged alert stream comes out in
/// `(hour, drive)` order — byte-identical to a single monitor fed the
/// same records, at any shard count. Shard workers run with quiet gauges;
/// the coordinator publishes the fleet-wide `dds_monitor_drives_tracked`
/// / `dds_monitor_drives_latched_*` aggregates after every batch, and
/// every emitted alert is recorded into the attached [`AlertHistory`] in
/// merged order.
///
/// [`ingest_batch`]: ShardedFleetMonitor::ingest_batch
#[derive(Debug)]
pub struct ShardedFleetMonitor {
    workers: Vec<Worker>,
    history: Option<Arc<AlertHistory>>,
    recorder: Option<Arc<FlightRecorder>>,
    metrics: CoordinatorMetrics,
    /// Last-known (drives_tracked, latched) per shard, refreshed by every
    /// batch reply, so gauge aggregation never needs an extra round trip.
    shard_state: Vec<(usize, [usize; 3])>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").field("alive", &self.handle.is_some()).finish()
    }
}

impl ShardedFleetMonitor {
    /// Spawns `shards` workers (clamped to at least 1), each with its own
    /// clone of the bundle and config.
    pub fn new(bundle: ModelBundle, config: MonitorConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        let workers = (0..shards)
            .map(|shard| {
                let (sender, receiver) = mpsc::channel();
                let bundle = bundle.clone();
                let config = config.clone();
                let handle = thread::Builder::new()
                    .name(format!("dds-shard-{shard}"))
                    .spawn(move || worker_loop(shard, bundle, config, receiver))
                    .expect("spawn shard worker");
                Worker { sender: Some(sender), handle: Some(handle) }
            })
            .collect();
        let metrics = CoordinatorMetrics::new();
        metrics.shards.set(shards as f64);
        ShardedFleetMonitor {
            workers,
            history: None,
            recorder: None,
            metrics,
            shard_state: vec![(0, [0; 3]); shards],
        }
    }

    /// Attaches a shared alert history; the coordinator records every
    /// merged alert into it (shard workers never touch it).
    #[must_use]
    pub fn with_history(mut self, history: Arc<AlertHistory>) -> Self {
        self.history = Some(history);
        self
    }

    /// Attaches a flight recorder; every subsequent batch deposits one
    /// [`BatchSpan`] (per-stage timings, shard breakdown) into it, and
    /// workers switch on their per-record stage clocks. Without a
    /// recorder the sharded path records nothing and times nothing
    /// beyond the pre-existing per-batch histogram — the
    /// instrumentation-is-inert discipline.
    #[must_use]
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    fn send(&self, shard: usize, job: Job) {
        self.workers[shard]
            .sender
            .as_ref()
            .expect("worker channel open")
            .send(job)
            .expect("shard worker alive");
    }

    /// Routes a batch to its shards, waits for every shard to finish, and
    /// returns the merged alert stream in `(hour, drive)` order.
    ///
    /// Records quarantined by a shard's quality gate yield no alerts
    /// (exactly as [`FleetMonitor::ingest`]); the per-shard tallies remain
    /// visible through [`shard_statuses`](ShardedFleetMonitor::shard_statuses).
    pub fn ingest_batch(&mut self, records: &[(DriveId, HealthRecord)]) -> Vec<Alert> {
        self.ingest_batch_from(records, "batch")
    }

    /// [`ingest_batch`](ShardedFleetMonitor::ingest_batch) with a source
    /// tag for the flight recorder's span (`"stream"` for the serve
    /// loop's simulated epochs, `"external"` for drained `/ingest`
    /// batches, `"batch"` for direct API calls). The tag changes nothing
    /// about routing or alerting.
    pub fn ingest_batch_from(
        &mut self,
        records: &[(DriveId, HealthRecord)],
        source: &'static str,
    ) -> Vec<Alert> {
        let started = Instant::now();
        let timed = self.recorder.is_some();
        let shards = self.workers.len();
        let mut buckets: Vec<Vec<(DriveId, HealthRecord)>> = vec![Vec::new(); shards];
        if shards == 1 {
            buckets[0] = records.to_vec();
        } else {
            for (drive, record) in records {
                buckets[shard_for(*drive, shards)].push((*drive, record.clone()));
            }
        }

        let (reply, replies) = mpsc::sync_channel(shards);
        let mut outstanding = 0usize;
        for (shard, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            self.send(shard, Job::Batch { records: bucket, timed, reply: reply.clone() });
            outstanding += 1;
        }
        drop(reply);

        let mut alerts = Vec::new();
        let mut shard_spans: Vec<ShardSpan> = Vec::new();
        for _ in 0..outstanding {
            let (shard, batch) = replies.recv().expect("shard worker alive");
            self.shard_state[shard] = (batch.drives_tracked, batch.latched);
            if timed {
                shard_spans.push(ShardSpan {
                    shard,
                    records: batch.records,
                    accepted: batch.accepted,
                    quarantined: batch.quarantined,
                    alerts: batch.alerts.len() as u64,
                    sanitize_seconds: batch.sanitize_seconds,
                    ingest_seconds: batch.ingest_seconds,
                });
            }
            alerts.extend(batch.alerts);
        }
        let merge_started = Instant::now();
        // Alerts of one drive live entirely on one shard and arrive there
        // in emission order, so a stable sort on (hour, drive) is a full
        // deterministic merge — equal keys never span shards.
        alerts.sort_by_key(|alert| (alert.hour, alert.drive.0));

        if let Some(history) = &self.history {
            for alert in &alerts {
                history.record(alert);
            }
        }
        self.publish_gauges();
        self.metrics.batch_seconds.observe(started.elapsed().as_secs_f64());
        if let Some(recorder) = &self.recorder {
            if !records.is_empty() {
                shard_spans.sort_by_key(|span| span.shard);
                let accepted: u64 = shard_spans.iter().map(|s| s.accepted).sum();
                let quarantined: u64 = shard_spans.iter().map(|s| s.quarantined).sum();
                recorder.record(BatchSpan {
                    source,
                    outcome: "ingested",
                    records: records.len() as u64,
                    accepted,
                    quarantined,
                    alerts: alerts.len() as u64,
                    merge_seconds: merge_started.elapsed().as_secs_f64(),
                    total_seconds: started.elapsed().as_secs_f64(),
                    shards: shard_spans,
                    ..BatchSpan::default()
                });
            }
        }
        alerts
    }

    fn publish_gauges(&self) {
        let tracked: usize = self.shard_state.iter().map(|(t, _)| t).sum();
        self.metrics.drives_tracked.set(tracked as f64);
        for (i, gauge) in self.metrics.latched.iter().enumerate() {
            let latched: usize = self.shard_state.iter().map(|(_, l)| l[i]).sum();
            gauge.set(latched as f64);
        }
    }

    /// Resets every shard's ingest session (ordering watermarks restart;
    /// cumulative stats are kept), blocking until all shards have done so.
    pub fn new_ingest_session(&mut self) {
        let (reply, replies) = mpsc::sync_channel(self.workers.len());
        for shard in 0..self.workers.len() {
            self.send(shard, Job::NewSession { reply: reply.clone() });
        }
        drop(reply);
        for _ in 0..self.workers.len() {
            replies.recv().expect("shard worker alive");
        }
    }

    /// Hot-swaps every shard's model bundle — the sharded half of a
    /// promotion — blocking until all shards run the new model.
    ///
    /// The coordinator serializes this between batches (it owns `&mut
    /// self` for both), so a swap never lands mid-batch: every batch is
    /// scored wholly by one model, which keeps the merged alert stream
    /// deterministic across promotion timing. Per-shard escalation state
    /// survives, exactly as in [`FleetMonitor::swap_bundle`].
    pub fn swap_bundle(&mut self, bundle: ModelBundle) {
        let (reply, replies) = mpsc::sync_channel(self.workers.len());
        for shard in 0..self.workers.len() {
            self.send(
                shard,
                Job::SwapBundle { bundle: Box::new(bundle.clone()), reply: reply.clone() },
            );
        }
        drop(reply);
        for _ in 0..self.workers.len() {
            replies.recv().expect("shard worker alive");
        }
    }

    /// Per-shard serving state, in shard order.
    pub fn shard_statuses(&self) -> Vec<ShardStatus> {
        let (reply, replies) = mpsc::sync_channel(self.workers.len());
        for shard in 0..self.workers.len() {
            self.send(shard, Job::Status { reply: reply.clone() });
        }
        drop(reply);
        let mut statuses: Vec<ShardStatus> = replies.iter().collect();
        statuses.sort_by_key(|s| s.shard);
        statuses
    }

    /// The `/shards` endpoint document: shard count plus per-shard state.
    pub fn statuses_json(&self) -> String {
        let per_shard: Vec<String> =
            self.shard_statuses().iter().map(ShardStatus::to_json).collect();
        format!("{{\"shards\": {}, \"per_shard\": [{}]}}", self.workers.len(), per_shard.join(", "))
    }

    /// The fleet-wide serving summary, aggregated across shards (same
    /// shape as [`FleetMonitor::health_status`]).
    pub fn health_status(&self) -> HealthStatus {
        let statuses = self.shard_statuses();
        let mut latched = [0usize; 3];
        for status in &statuses {
            for (total, n) in latched.iter_mut().zip(status.latched) {
                *total += n;
            }
        }
        HealthStatus {
            drives_tracked: statuses.iter().map(|s| s.drives_tracked).sum(),
            latched,
            alerts_emitted: self.history.as_ref().map_or(0, |h| h.total()),
        }
    }

    /// Fleet-wide quality tallies: every shard's sanitizer stats merged.
    pub fn quality_stats(&self) -> QualityStats {
        let mut merged = QualityStats::default();
        for status in self.shard_statuses() {
            merged.merge(&status.quality);
        }
        merged
    }
}

impl Drop for ShardedFleetMonitor {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            drop(worker.sender.take());
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Counts of everything offered to an [`IngestQueue`]. The conservation
/// invariant `offered = accepted + shed` holds at all times (records and
/// batches alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestCounts {
    /// Records offered (accepted + shed).
    pub offered_records: u64,
    /// Records queued for the serve loop.
    pub accepted_records: u64,
    /// Records dropped because the queue was full.
    pub shed_records: u64,
    /// Batches queued.
    pub accepted_batches: u64,
    /// Batches dropped whole (a batch is never split).
    pub shed_batches: u64,
}

/// The bounded intake between the HTTP `/ingest` endpoint and the serve
/// loop: `offer` never blocks — a full queue sheds the batch (HTTP 429)
/// and counts it (`dds_shed_records_total`), which is what the watchdog's
/// shed budget and the overload runbook key off.
#[derive(Debug)]
pub struct IngestQueue {
    sender: SyncSender<Vec<(DriveId, HealthRecord)>>,
    receiver: Mutex<Receiver<Vec<(DriveId, HealthRecord)>>>,
    counts: Mutex<IngestCounts>,
    recorder: Option<Arc<FlightRecorder>>,
    accepted_records: Arc<Counter>,
    accepted_batches: Arc<Counter>,
    shed_records: Arc<Counter>,
    shed_batches: Arc<Counter>,
}

impl IngestQueue {
    /// A queue holding at most `capacity` batches.
    pub fn bounded(capacity: usize) -> Self {
        let (sender, receiver) = mpsc::sync_channel(capacity.max(1));
        let registry = dds_obs::metrics::global();
        IngestQueue {
            sender,
            receiver: Mutex::new(receiver),
            counts: Mutex::new(IngestCounts::default()),
            recorder: None,
            accepted_records: registry.counter("dds_ingest_records_total"),
            accepted_batches: registry.counter("dds_ingest_batches_total"),
            shed_records: registry.counter("dds_shed_records_total"),
            shed_batches: registry.counter("dds_shed_batches_total"),
        }
    }

    /// Attaches a flight recorder; every *shed* batch then deposits a
    /// `"shed"`-outcome span (zero timings, no shard breakdown — the
    /// batch never reached a shard). Accepted batches are recorded later
    /// by the coordinator when the serve loop drains them.
    #[must_use]
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Offers one decoded batch. `Ok(n)` queued `n` records; `Err(n)`
    /// shed all `n` because the queue was full (backpressure) — the
    /// caller should answer HTTP 429 and let the relay retry later.
    pub fn offer(&self, batch: Vec<(DriveId, HealthRecord)>) -> Result<usize, usize> {
        let records = batch.len() as u64;
        // Poison recovery: the tallies are plain integers updated in
        // place; a panic-isolated handler dying mid-offer must not turn
        // every later /ingest into a 500.
        let mut counts = self.counts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        counts.offered_records += records;
        match self.sender.try_send(batch) {
            Ok(()) => {
                counts.accepted_records += records;
                counts.accepted_batches += 1;
                self.accepted_records.add(records);
                self.accepted_batches.inc();
                Ok(records as usize)
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                counts.shed_records += records;
                counts.shed_batches += 1;
                self.shed_records.add(records);
                self.shed_batches.inc();
                if let Some(recorder) = &self.recorder {
                    recorder.record(BatchSpan {
                        source: "external",
                        outcome: "shed",
                        records,
                        ..BatchSpan::default()
                    });
                }
                Err(records as usize)
            }
        }
    }

    /// Drains every queued batch into one record list, in arrival order.
    /// Called by the serve loop between stream ticks; never blocks.
    pub fn drain(&self) -> Vec<(DriveId, HealthRecord)> {
        let receiver = self.receiver.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut records = Vec::new();
        while let Ok(batch) = receiver.try_recv() {
            records.extend(batch);
        }
        records
    }

    /// A snapshot of the conservation counters.
    pub fn counts(&self) -> IngestCounts {
        *self.counts.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_core::{Analysis, AnalysisConfig, CategorizationConfig};
    use dds_smartsim::stream::hour_ordered;
    use dds_smartsim::{FleetConfig, FleetSimulator, NUM_ATTRIBUTES};

    fn trained_bundle(seed: u64) -> ModelBundle {
        let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(seed)).run();
        let config = AnalysisConfig {
            categorization: CategorizationConfig { run_svc: false, ..Default::default() },
            ..Default::default()
        };
        let report = Analysis::new(config).run(&dataset).unwrap();
        ModelBundle::from_analysis(&dataset, &report)
    }

    fn alert_lines(alerts: &[Alert]) -> Vec<String> {
        alerts.iter().map(|a| format!("{a}")).collect()
    }

    #[test]
    fn shard_for_is_stable_and_covers_all_shards() {
        for shards in [1usize, 2, 3, 8] {
            let mut population = vec![0usize; shards];
            for id in 0..10_000u32 {
                let shard = shard_for(DriveId(id), shards);
                assert!(shard < shards);
                assert_eq!(shard, shard_for(DriveId(id), shards), "must be pure");
                population[shard] += 1;
            }
            let expected = 10_000 / shards;
            for (shard, &n) in population.iter().enumerate() {
                assert!(
                    n > expected / 2 && n < expected * 2,
                    "shard {shard}/{shards} holds {n} of 10000 (expected ~{expected})"
                );
            }
        }
    }

    #[test]
    fn sharded_alerts_match_a_single_monitor_byte_for_byte() {
        let bundle = trained_bundle(9_101);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(9_102)).run();
        let records = hour_ordered(&live);

        let mut single = FleetMonitor::new(bundle.clone(), MonitorConfig::default());
        let mut expected = Vec::new();
        for (drive, record) in &records {
            expected.extend(single.ingest(*drive, record));
        }

        for shards in [1usize, 3, 4] {
            let mut sharded =
                ShardedFleetMonitor::new(bundle.clone(), MonitorConfig::default(), shards);
            let alerts = sharded.ingest_batch(&records);
            assert_eq!(
                alert_lines(&alerts),
                alert_lines(&expected),
                "{shards} shard(s) must reproduce the single-monitor stream"
            );
            let status = sharded.health_status();
            assert_eq!(status.drives_tracked, single.health_status().drives_tracked);
            assert_eq!(status.latched, single.health_status().latched);
            assert_eq!(sharded.quality_stats().accepted, records.len() as u64);
        }
    }

    #[test]
    fn batches_can_be_split_arbitrarily_without_changing_alerts() {
        let bundle = trained_bundle(9_103);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(9_104)).run();
        let records = hour_ordered(&live);

        let mut whole = ShardedFleetMonitor::new(bundle.clone(), MonitorConfig::default(), 2);
        let expected = whole.ingest_batch(&records);

        let mut chunked = ShardedFleetMonitor::new(bundle, MonitorConfig::default(), 2);
        let mut alerts = Vec::new();
        for chunk in records.chunks(97) {
            alerts.extend(chunked.ingest_batch(chunk));
        }
        assert_eq!(alert_lines(&alerts), alert_lines(&expected));
    }

    #[test]
    fn shard_statuses_partition_the_fleet() {
        let bundle = trained_bundle(9_105);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(9_106)).run();
        let records = hour_ordered(&live);
        let mut sharded = ShardedFleetMonitor::new(bundle, MonitorConfig::default(), 4);
        sharded.ingest_batch(&records);

        let statuses = sharded.shard_statuses();
        assert_eq!(statuses.len(), 4);
        let tracked: usize = statuses.iter().map(|s| s.drives_tracked).sum();
        assert_eq!(tracked, sharded.health_status().drives_tracked);
        assert!(statuses.iter().all(|s| s.drives_tracked > 0), "test fleet spans all 4 shards");
        let accepted: u64 = statuses.iter().map(|s| s.quality.accepted).sum();
        assert_eq!(accepted, records.len() as u64);
        let json = sharded.statuses_json();
        dds_obs::json::validate(&json).expect("shards JSON");
        assert!(json.contains("\"shards\": 4"));
    }

    #[test]
    fn new_ingest_session_resets_every_shard() {
        let bundle = trained_bundle(9_107);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(9_108)).run();
        let records = hour_ordered(&live);
        let mut sharded = ShardedFleetMonitor::new(bundle, MonitorConfig::default(), 3);

        sharded.ingest_batch(&records);
        assert_eq!(sharded.quality_stats().quarantined, 0);
        // Replaying the same epoch looks like ordering faults...
        sharded.ingest_batch(&records);
        assert_eq!(sharded.quality_stats().quarantined, records.len() as u64);
        // ...until the session restarts on every shard.
        sharded.new_ingest_session();
        sharded.ingest_batch(&records);
        assert_eq!(sharded.quality_stats().quarantined, records.len() as u64);
    }

    #[test]
    fn bundle_swap_between_batches_keeps_identical_models_byte_identical() {
        let bundle = trained_bundle(9_113);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(9_114)).run();
        let records = hour_ordered(&live);

        let mut plain = ShardedFleetMonitor::new(bundle.clone(), MonitorConfig::default(), 3);
        let mut expected = Vec::new();
        for chunk in records.chunks(300) {
            expected.extend(plain.ingest_batch(chunk));
        }

        // Promote the *same* bundle between every pair of batches: the
        // escalation state survives each swap, so the stream is unchanged.
        let mut swapped = ShardedFleetMonitor::new(bundle.clone(), MonitorConfig::default(), 3);
        let mut alerts = Vec::new();
        for chunk in records.chunks(300) {
            alerts.extend(swapped.ingest_batch(chunk));
            swapped.swap_bundle(bundle.clone());
        }
        assert_eq!(alert_lines(&alerts), alert_lines(&expected));
        assert_eq!(swapped.health_status().latched, plain.health_status().latched);

        // A *different* bundle actually changes scoring somewhere.
        let other = trained_bundle(9_115);
        let mut diverged = ShardedFleetMonitor::new(bundle, MonitorConfig::default(), 3);
        diverged.swap_bundle(other);
        let mut re_alerts = Vec::new();
        let mut re_plain = Vec::new();
        // Fresh streams (new session semantics): replay from scratch.
        let mut baseline =
            ShardedFleetMonitor::new(trained_bundle(9_113), MonitorConfig::default(), 3);
        for chunk in records.chunks(300) {
            re_alerts.extend(diverged.ingest_batch(chunk));
            re_plain.extend(baseline.ingest_batch(chunk));
        }
        assert_ne!(
            alert_lines(&re_alerts),
            alert_lines(&re_plain),
            "a cross-fleet bundle must score differently somewhere"
        );
    }

    #[test]
    fn flight_recorder_spans_conserve_records_across_shards() {
        let bundle = trained_bundle(9_109);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(9_110)).run();
        let records = hour_ordered(&live);
        // Capacity exceeds the batch count so the conservation sums below
        // can see every span (the ring never evicts in this test).
        let recorder = Arc::new(FlightRecorder::new(256));
        let mut sharded = ShardedFleetMonitor::new(bundle, MonitorConfig::default(), 3)
            .with_flight_recorder(Arc::clone(&recorder));

        let mut batches = 0u64;
        for chunk in records.chunks(500) {
            sharded.ingest_batch_from(chunk, "stream");
            batches += 1;
        }
        assert_eq!(recorder.total(), batches);

        for span in recorder.last(batches as usize) {
            assert_eq!(span.source, "stream");
            assert_eq!(span.outcome, "ingested");
            // The quality gate partitions every batch...
            assert_eq!(span.accepted + span.quarantined, span.records);
            // ...and the shard spans partition it again, in shard order.
            let shard_records: u64 = span.shards.iter().map(|s| s.records).sum();
            assert_eq!(shard_records, span.records);
            for pair in span.shards.windows(2) {
                assert!(pair[0].shard < pair[1].shard);
            }
            // Stage clocks ran (timed mode) and nest inside the total.
            for shard in &span.shards {
                assert!(shard.sanitize_seconds + shard.ingest_seconds <= span.total_seconds);
            }
            assert!(span.merge_seconds <= span.total_seconds);
        }
        // The recorded totals agree with the quality tallies.
        let spans = recorder.last(batches as usize);
        let accepted: u64 = spans.iter().map(|s| s.accepted).sum();
        assert_eq!(accepted, sharded.quality_stats().accepted);
        // Per-shard lifetime tallies behind `/shards` saw every batch.
        let statuses = sharded.shard_statuses();
        let shard_batches: u64 = statuses.iter().map(|s| s.batches).sum();
        assert!(shard_batches >= batches, "every batch hit at least one shard");
        let bucketed: u64 = statuses.iter().map(|s| s.batch_buckets.iter().sum::<u64>()).sum();
        assert_eq!(bucketed, shard_batches, "every batch landed in exactly one bucket");
    }

    #[test]
    fn detached_recorder_changes_nothing_and_records_nothing() {
        let bundle = trained_bundle(9_111);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(9_112)).run();
        let records = hour_ordered(&live);

        let mut plain = ShardedFleetMonitor::new(bundle.clone(), MonitorConfig::default(), 2);
        let expected = plain.ingest_batch(&records);

        let recorder = Arc::new(FlightRecorder::new(64));
        let mut recorded = ShardedFleetMonitor::new(bundle, MonitorConfig::default(), 2)
            .with_flight_recorder(Arc::clone(&recorder));
        let observed = recorded.ingest_batch(&records);

        assert_eq!(alert_lines(&observed), alert_lines(&expected));
        assert_eq!(recorder.total(), 1);
        assert_eq!(recorder.last(1)[0].source, "batch");
        // An empty batch is not a span: idle ticks must not flood the ring.
        recorded.ingest_batch(&[]);
        assert_eq!(recorder.total(), 1);
    }

    #[test]
    fn shed_batches_deposit_shed_spans() {
        let queue = IngestQueue::bounded(1);
        let recorder = Arc::new(FlightRecorder::new(8));
        let queue = queue.with_flight_recorder(Arc::clone(&recorder));
        let batch = |n: u32| -> Vec<(DriveId, HealthRecord)> {
            (0..n)
                .map(|i| (DriveId(i), HealthRecord { hour: 0, values: [1.0; NUM_ATTRIBUTES] }))
                .collect()
        };
        assert_eq!(queue.offer(batch(4)), Ok(4));
        assert_eq!(queue.offer(batch(9)), Err(9));
        // Only the shed batch left a span; the accepted one is recorded
        // later, when the serve loop drains and ingests it.
        assert_eq!(recorder.total(), 1);
        let span = &recorder.last(1)[0];
        assert_eq!(span.outcome, "shed");
        assert_eq!(span.source, "external");
        assert_eq!(span.records, 9);
        assert!(span.shards.is_empty());
        assert_eq!(span.records as usize, queue.counts().shed_records as usize);
    }

    #[test]
    fn ingest_queue_sheds_on_overflow_and_conserves_counts() {
        let queue = IngestQueue::bounded(2);
        let batch = |n: u32| -> Vec<(DriveId, HealthRecord)> {
            (0..n)
                .map(|i| (DriveId(i), HealthRecord { hour: 0, values: [1.0; NUM_ATTRIBUTES] }))
                .collect()
        };
        assert_eq!(queue.offer(batch(10)), Ok(10));
        assert_eq!(queue.offer(batch(5)), Ok(5));
        // Queue full: the whole batch is shed, never split.
        assert_eq!(queue.offer(batch(7)), Err(7));
        let counts = queue.counts();
        assert_eq!(counts.offered_records, 22);
        assert_eq!(counts.accepted_records, 15);
        assert_eq!(counts.shed_records, 7);
        assert_eq!(counts.accepted_records + counts.shed_records, counts.offered_records);
        assert_eq!(counts.accepted_batches, 2);
        assert_eq!(counts.shed_batches, 1);

        // Draining frees capacity and concatenates in arrival order.
        let drained = queue.drain();
        assert_eq!(drained.len(), 15);
        assert_eq!(queue.offer(batch(3)), Ok(3));
        assert_eq!(queue.drain().len(), 3);
        assert!(queue.drain().is_empty());
    }
}
