//! The scrape-endpoint handler: routes the observability HTTP server's
//! requests to the metrics registry, alert history, health state and
//! stage profiler.
//!
//! [`MonitorService`] implements [`Handler`] and is shared across the
//! server's worker threads; every endpoint reads shared state, so scrapes
//! never block ingest. The endpoints (all `GET`/`HEAD`):
//!
//! | Path            | Payload |
//! |-----------------|---------|
//! | `/metrics`      | Prometheus text exposition of the global registry |
//! | `/metrics.json` | The same snapshot as JSON |
//! | `/healthz`      | `200 {"status": "ok"}` or `503 {"status": "degraded", …}` |
//! | `/readyz`       | `200` once the model bundle is loaded, `503` before |
//! | `/alerts?n=K`   | The most recent `K` alerts (default 20), newest first |
//! | `/profile`      | Per-stage wall time, counts and p50/p95/p99 as JSON |
//! | `/model`        | Provenance + generation of the serving model (`503 {"status": "training"}` until one is published) |
//! | `/shards`       | Per-shard serving state published by the sharded serve loop (404 without one) |
//! | `/drift`        | Drift-detector state published by the serve loop (404 without online learning) |
//! | `/trace?n=K`    | The last `K` flight-recorder batch spans as JSON lines (404 without a recorder) |
//! | `/timeseries`   | Fleet + per-shard sliding-window rates, quantiles and sparkline series |
//!
//! Plus two `POST` endpoints. `/ingest`: a batched record payload (binary
//! [`wire`] batch or CSV chunk, sniffed by leading bytes) decoded and
//! offered to the attached [`IngestQueue`]. Replies are a JSON receipt —
//! `200 {"status": "queued", …}` or, when the bounded queue is full and
//! the batch is shed, `429 {"status": "shed", …}`; malformed payloads get
//! a 400 and count into `dds_serve_ingest_errors_total`. And
//! `/model/promote`: requests an atomic hot-swap of the serving model
//! through the attached [`PromotionGate`] — the serve loop performs the
//! swap between ingest batches and the reply carries the new `/model`
//! generation.
//!
//! Both metrics endpoints refresh `dds_uptime_seconds` and the derived
//! `_p50`/`_p95`/`_p99` gauges before snapshotting, so every scrape sees
//! current quantiles without a background publisher thread.

use crate::history::AlertHistory;
use crate::shard::IngestQueue;
use crate::wire;
use dds_obs::http::{Handler, Request, Response};
use dds_obs::journal::FlightRecorder;
use dds_obs::metrics;
use dds_obs::profile::StageProfiler;
use dds_obs::timeseries::{ShardSeriesStore, TimeSeriesStore};
use dds_obs::watchdog::HealthState;
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default number of alerts returned by `/alerts` without a `n=` query.
const DEFAULT_ALERTS: usize = 20;

/// How long `POST /model/promote` waits for the serve loop to pick the
/// request up and perform the swap before answering 503. Generous against
/// the default tick cadence; a stalled serve loop fails the request
/// rather than hanging the HTTP worker forever.
const PROMOTE_TIMEOUT: Duration = Duration::from_secs(5);

/// The serving model's provenance document plus a monotonic generation
/// counter, shared between the serve loop (which publishes) and the
/// `/model` endpoint (which reads).
///
/// Every [`ModelSlot::publish`] — initial load and each promotion —
/// increments the generation, so scrape clients can detect hot-swaps:
/// two `/model` reads with the same generation are guaranteed to
/// describe the same model, and the generation strictly increases across
/// promotions (never torn, never reused).
#[derive(Debug, Default)]
pub struct ModelSlot {
    inner: Mutex<Option<(u64, String)>>,
}

impl ModelSlot {
    /// An empty slot: `/model` answers `503 training` until the first
    /// publish.
    pub fn new() -> Self {
        ModelSlot { inner: Mutex::new(None) }
    }

    /// Locks the slot, recovering from poisoning: the guarded value is a
    /// plain `(generation, string)` that every writer replaces whole, so
    /// it is consistent even if a panic-isolated handler died mid-read —
    /// one crashed request must not turn every later `/model` scrape
    /// into a panic.
    fn lock(&self) -> std::sync::MutexGuard<'_, Option<(u64, String)>> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Publishes a provenance document, returning the new generation
    /// (1 for the initial model, +1 per promotion).
    pub fn publish(&self, provenance: String) -> u64 {
        let mut inner = self.lock();
        let generation = inner.as_ref().map_or(0, |(g, _)| *g) + 1;
        *inner = Some((generation, provenance));
        generation
    }

    /// The current `(generation, provenance)`, if a model is published.
    pub fn get(&self) -> Option<(u64, String)> {
        self.lock().clone()
    }

    /// The current generation (0 before the first publish).
    pub fn generation(&self) -> u64 {
        self.lock().as_ref().map_or(0, |(g, _)| *g)
    }
}

/// The outcome of a promotion request, produced by the serve loop and
/// relayed verbatim as the `POST /model/promote` reply.
#[derive(Debug, Clone)]
pub struct PromotionOutcome {
    /// HTTP status for the reply (200 promoted, 409 nothing to promote…).
    pub status: u16,
    /// JSON reply body.
    pub body: String,
}

/// The rendezvous between `POST /model/promote` handlers and the serve
/// loop: handlers enqueue a reply channel and block (bounded by
/// `PROMOTE_TIMEOUT`, 5 s); the serve loop drains the queue between ingest
/// batches, performs at most one atomic swap, and answers every waiter.
/// The swap therefore never lands mid-batch, which is what keeps the
/// alert stream deterministic across promotion timing.
#[derive(Debug, Default)]
pub struct PromotionGate {
    waiters: Mutex<Vec<SyncSender<PromotionOutcome>>>,
}

impl PromotionGate {
    /// An empty gate.
    pub fn new() -> Self {
        PromotionGate { waiters: Mutex::new(Vec::new()) }
    }

    /// Handler side: enqueue a promotion request and wait for the serve
    /// loop's verdict. `None` means the loop never picked it up in time.
    pub fn request(&self, timeout: Duration) -> Option<PromotionOutcome> {
        let (reply, outcome) = mpsc::sync_channel(1);
        // Poison recovery: the queue is a plain Vec of senders, valid at
        // every instruction boundary, and a poisoned gate would otherwise
        // panic every later promotion request.
        self.waiters.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(reply);
        match outcome.recv_timeout(timeout) {
            Ok(outcome) => Some(outcome),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Serve-loop side: takes every pending request (empty almost every
    /// tick — one `Mutex` lock is the whole cost).
    pub fn take(&self) -> Vec<SyncSender<PromotionOutcome>> {
        std::mem::take(
            &mut *self.waiters.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

/// Default number of spans returned by `/trace` without a `n=` query.
const DEFAULT_TRACE: usize = 50;

/// Sliding window over which `/timeseries` computes its rates and
/// quantiles.
const TIMESERIES_WINDOW: Duration = Duration::from_secs(60);

/// Number of per-interval points in each `/timeseries` sparkline series.
const SERIES_POINTS: usize = 60;

/// The shared request handler behind every scrape endpoint.
#[derive(Debug)]
pub struct MonitorService {
    history: Arc<AlertHistory>,
    health: Arc<HealthState>,
    profiler: Option<Arc<StageProfiler>>,
    /// Provenance + generation of the serving model, published by the
    /// host when the model is trained, loaded or promoted; `/model`
    /// answers 503 before the first publish.
    model: Arc<ModelSlot>,
    /// The bounded intake behind `/ingest`; without one the endpoint
    /// answers 503 (this deployment does not accept pushed records).
    ingest: Option<Arc<IngestQueue>>,
    /// Per-shard state document behind `/shards`, re-published by the
    /// sharded serve loop after every ingested fleet-hour.
    shards: Option<Arc<Mutex<String>>>,
    /// Drift-detector state document behind `/drift`, re-published by
    /// the serve loop each tick when online learning is on.
    drift: Option<Arc<Mutex<String>>>,
    /// The promotion rendezvous behind `POST /model/promote`; without
    /// one the endpoint answers 503 (no online learning loop to swap).
    promotions: Option<Arc<PromotionGate>>,
    /// The flight recorder behind `/trace`; without one the endpoint
    /// answers 404 (this deployment records no spans).
    recorder: Option<Arc<FlightRecorder>>,
    /// The fleet-level snapshot ring behind `/timeseries`.
    timeseries: Option<Arc<TimeSeriesStore>>,
    /// The per-shard rings feeding `/timeseries`'s `per_shard` section.
    shard_series: Option<Arc<ShardSeriesStore>>,
    started: Instant,
}

impl MonitorService {
    /// Creates a service over a shared alert history and health state.
    pub fn new(history: Arc<AlertHistory>, health: Arc<HealthState>) -> Self {
        MonitorService {
            history,
            health,
            profiler: None,
            model: Arc::new(ModelSlot::new()),
            ingest: None,
            shards: None,
            drift: None,
            promotions: None,
            recorder: None,
            timeseries: None,
            shard_series: None,
            started: Instant::now(),
        }
    }

    /// Attaches the flight recorder backing the `/trace` endpoint.
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches the fleet-level snapshot ring backing `/timeseries`.
    pub fn with_timeseries(mut self, store: Arc<TimeSeriesStore>) -> Self {
        self.timeseries = Some(store);
        self
    }

    /// Attaches the per-shard rings feeding `/timeseries`'s `per_shard`
    /// section (optional — a non-sharded deployment serves only the
    /// fleet section).
    pub fn with_shard_series(mut self, series: Arc<ShardSeriesStore>) -> Self {
        self.shard_series = Some(series);
        self
    }

    /// Attaches the bounded ingest queue backing the `/ingest` endpoint.
    /// The host keeps the other `Arc` and drains it from the serve loop.
    pub fn with_ingest(mut self, queue: Arc<IngestQueue>) -> Self {
        self.ingest = Some(queue);
        self
    }

    /// Attaches the shared `/shards` document slot. The host re-publishes
    /// [`crate::ShardedFleetMonitor::statuses_json`] into it as serving
    /// progresses; an empty string answers 503 (still starting).
    pub fn with_shards_slot(mut self, shards: Arc<Mutex<String>>) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Attaches a stage profiler backing the `/profile` endpoint (without
    /// one the endpoint answers an empty object).
    pub fn with_profiler(mut self, profiler: Arc<StageProfiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Attaches a shared provenance slot backing the `/model` endpoint.
    /// The host keeps the other `Arc` and publishes the provenance JSON
    /// (via [`ModelSlot::publish`]) once a model is trained or loaded,
    /// and again on every promotion.
    pub fn with_model_slot(mut self, model: Arc<ModelSlot>) -> Self {
        self.model = model;
        self
    }

    /// Attaches the shared `/drift` document slot. The serve loop
    /// re-publishes [`crate::DriftDetector::to_json`] into it each tick;
    /// an empty string answers 503 (still starting).
    pub fn with_drift_slot(mut self, drift: Arc<Mutex<String>>) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Attaches the promotion gate backing `POST /model/promote`. The
    /// host keeps the other `Arc` and drains it from the serve loop.
    pub fn with_promotion_gate(mut self, gate: Arc<PromotionGate>) -> Self {
        self.promotions = Some(gate);
        self
    }

    fn model_endpoint(&self) -> Response {
        match self.model.get() {
            Some((generation, provenance)) => {
                // Inject the generation as the leading top-level field of
                // the provenance object, keeping every original field.
                let body = match provenance.strip_prefix('{').map(str::trim_start) {
                    Some("}") => format!("{{\"generation\": {generation}}}"),
                    Some(rest) => format!("{{\"generation\": {generation}, {rest}"),
                    None => provenance,
                };
                Response::ok_json(body)
            }
            None => Response {
                status: 503,
                content_type: "application/json",
                body: "{\"status\": \"training\"}".to_string(),
            },
        }
    }

    fn drift_endpoint(&self) -> Response {
        let Some(slot) = &self.drift else {
            return Response::not_found();
        };
        let document = slot.lock().map(|doc| doc.clone()).unwrap_or_default();
        if document.is_empty() {
            Response {
                status: 503,
                content_type: "application/json",
                body: "{\"status\": \"starting\"}".to_string(),
            }
        } else {
            Response::ok_json(document)
        }
    }

    fn promote_endpoint(&self) -> Response {
        let Some(gate) = &self.promotions else {
            return Response {
                status: 503,
                content_type: "application/json",
                body: "{\"status\": \"promotion disabled\"}".to_string(),
            };
        };
        match gate.request(PROMOTE_TIMEOUT) {
            Some(outcome) => Response {
                status: outcome.status,
                content_type: "application/json",
                body: outcome.body,
            },
            None => Response {
                status: 503,
                content_type: "application/json",
                body: "{\"status\": \"promotion timed out\"}".to_string(),
            },
        }
    }

    /// Refreshes scrape-time derived metrics, then snapshots the registry.
    fn fresh_snapshot(&self) -> metrics::MetricsSnapshot {
        let registry = metrics::global();
        registry.gauge("dds_uptime_seconds").set(self.started.elapsed().as_secs_f64());
        metrics::publish_quantile_gauges(registry);
        registry.snapshot()
    }

    fn healthz(&self) -> Response {
        if self.health.is_degraded() {
            let reason = self.health.degraded_reason().unwrap_or_default();
            let body = format!(
                "{{\"status\": \"degraded\", \"reason\": \"{}\"}}",
                dds_obs::json::escape(&reason)
            );
            Response { status: 503, content_type: "application/json", body }
        } else {
            Response::ok_json("{\"status\": \"ok\"}")
        }
    }

    fn readyz(&self) -> Response {
        if self.health.is_ready() {
            Response::ok_json("{\"status\": \"ready\"}")
        } else {
            Response {
                status: 503,
                content_type: "application/json",
                body: "{\"status\": \"starting\"}".to_string(),
            }
        }
    }

    fn alerts(&self, request: &Request) -> Response {
        let n = match request.query_param("n") {
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return Response::bad_request(),
            },
            None => DEFAULT_ALERTS,
        };
        Response::ok_json(self.history.to_json(n))
    }

    fn index(&self) -> Response {
        Response::ok_text(
            "dds monitor observability endpoints:\n\
             /metrics /metrics.json /healthz /readyz /alerts?n=K /profile /model /shards\n\
             /drift /trace?n=K /timeseries\n\
             POST /ingest (binary DDSB batch or CSV chunk)\n\
             POST /model/promote (hot-swap the refit candidate)\n",
        )
    }

    fn shards_endpoint(&self) -> Response {
        let Some(slot) = &self.shards else {
            return Response::not_found();
        };
        let document = slot.lock().map(|doc| doc.clone()).unwrap_or_default();
        if document.is_empty() {
            Response {
                status: 503,
                content_type: "application/json",
                body: "{\"status\": \"starting\"}".to_string(),
            }
        } else {
            Response::ok_json(document)
        }
    }

    fn trace_endpoint(&self, request: &Request) -> Response {
        let Some(recorder) = &self.recorder else {
            return Response::not_found();
        };
        let n = match request.query_param("n") {
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return Response::bad_request(),
            },
            None => DEFAULT_TRACE,
        };
        Response {
            status: 200,
            content_type: "application/x-ndjson",
            body: recorder.to_json_lines(n),
        }
    }

    fn timeseries_endpoint(&self) -> Response {
        let Some(store) = &self.timeseries else {
            return Response::not_found();
        };
        let w = TIMESERIES_WINDOW;
        let batch = "dds_ingest_batch_seconds";
        let fleet = format!(
            "{{\"ingest_per_sec\": {}, \"alert_per_min\": {}, \"shed_per_sec\": {}, \
             \"quarantine_per_sec\": {}, \"batch_p50_seconds\": {}, \"batch_p95_seconds\": {}, \
             \"batch_p99_seconds\": {}, \"ingest_series\": {}, \"batch_p99_series\": {}}}",
            json_opt(store.rate_per_sec("dds_monitor_records_ingested_total", w)),
            json_opt(store.rate_per_min("dds_monitor_alerts_total", w)),
            json_opt(store.rate_per_sec("dds_shed_records_total", w)),
            json_opt(store.rate_per_sec("dds_records_quarantined_total", w)),
            json_opt(store.window_quantile(batch, w, 0.5)),
            json_opt(store.window_quantile(batch, w, 0.95)),
            json_opt(store.window_quantile(batch, w, 0.99)),
            json_series(&store.rate_series("dds_monitor_records_ingested_total", SERIES_POINTS)),
            json_series(&store.quantile_series(batch, SERIES_POINTS, 0.99)),
        );
        let per_shard = match &self.shard_series {
            Some(series) => {
                let rows: Vec<String> = (0..series.shards())
                    .map(|shard| {
                        format!(
                            "{{\"shard\": {shard}, \"accepted_per_sec\": {}, \
                             \"quarantine_per_sec\": {}, \"alert_per_min\": {}, \
                             \"batch_p50_seconds\": {}, \"batch_p99_seconds\": {}, \
                             \"ingest_series\": {}}}",
                            json_opt(series.accepted_per_sec(shard, w)),
                            json_opt(series.quarantine_per_sec(shard, w)),
                            json_opt(series.alert_per_min(shard, w)),
                            json_opt(series.batch_quantile(shard, w, 0.5)),
                            json_opt(series.batch_quantile(shard, w, 0.99)),
                            json_series(&series.accepted_series(shard, SERIES_POINTS)),
                        )
                    })
                    .collect();
                format!("[{}]", rows.join(", "))
            }
            None => "[]".to_string(),
        };
        Response::ok_json(format!(
            "{{\"window_seconds\": {}, \"fleet\": {fleet}, \"per_shard\": {per_shard}}}",
            w.as_secs(),
        ))
    }

    fn ingest_endpoint(&self, request: &Request) -> Response {
        let Some(queue) = &self.ingest else {
            return Response {
                status: 503,
                content_type: "application/json",
                body: "{\"status\": \"ingest disabled\"}".to_string(),
            };
        };
        let decoded = if wire::looks_binary(&request.body) {
            wire::decode_batch(&request.body)
        } else {
            match std::str::from_utf8(&request.body) {
                Ok(text) => wire::parse_csv_chunk(text),
                Err(_) => Err(wire::WireError::BadMagic),
            }
        };
        let batch = match decoded {
            Ok(batch) => batch,
            Err(error) => {
                metrics::global().counter("dds_serve_ingest_errors_total").inc();
                let body = format!(
                    "{{\"status\": \"rejected\", \"error\": \"{}\"}}",
                    dds_obs::json::escape(&error.to_string())
                );
                return Response { status: 400, content_type: "application/json", body };
            }
        };
        match queue.offer(batch) {
            Ok(records) => {
                Response::ok_json(format!("{{\"status\": \"queued\", \"records\": {records}}}"))
            }
            Err(records) => Response {
                status: 429,
                content_type: "application/json",
                body: format!("{{\"status\": \"shed\", \"records\": {records}}}"),
            },
        }
    }
}

impl Handler for MonitorService {
    fn handle(&self, request: &Request) -> Response {
        // `/ingest` and `/model/promote` are the only mutating endpoints
        // and require POST; every scrape endpoint is read-only and
        // rejects POST bodies.
        if request.path == "/ingest" {
            return if request.method == "POST" {
                self.ingest_endpoint(request)
            } else {
                Response::text(405, "POST a record batch to /ingest\n")
            };
        }
        if request.path == "/model/promote" {
            return if request.method == "POST" {
                self.promote_endpoint()
            } else {
                Response::text(405, "POST to /model/promote\n")
            };
        }
        if request.method == "POST" {
            return Response::text(405, "only /ingest and /model/promote accept POST\n");
        }
        match request.path.as_str() {
            "/" => self.index(),
            "/metrics" => {
                let body = self.fresh_snapshot().to_prometheus();
                Response { status: 200, content_type: "text/plain; version=0.0.4", body }
            }
            "/metrics.json" => Response::ok_json(self.fresh_snapshot().to_json()),
            "/healthz" => self.healthz(),
            "/readyz" => self.readyz(),
            "/alerts" => self.alerts(request),
            "/profile" => Response::ok_json(
                self.profiler.as_ref().map_or_else(|| "{}".to_string(), |p| p.to_json()),
            ),
            "/model" => self.model_endpoint(),
            "/shards" => self.shards_endpoint(),
            "/drift" => self.drift_endpoint(),
            "/trace" => self.trace_endpoint(request),
            "/timeseries" => self.timeseries_endpoint(),
            _ => Response::not_found(),
        }
    }
}

/// Renders an optional metric value as a JSON number or `null` (a window
/// that cannot be answered yet is "unknown", not zero).
fn json_opt(value: Option<f64>) -> String {
    value.map(dds_obs::json::number).unwrap_or_else(|| "null".to_string())
}

/// Renders a sparkline series as a JSON array of numbers.
fn json_series(values: &[f64]) -> String {
    let rendered: Vec<String> = values.iter().map(|&v| dds_obs::json::number(v)).collect();
    format!("[{}]", rendered.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{Alert, AlertKind, Severity};

    fn request(path: &str, query: Option<&str>) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query.map(String::from),
            body: Vec::new(),
        }
    }

    fn service() -> MonitorService {
        MonitorService::new(Arc::new(AlertHistory::new(16)), HealthState::new())
    }

    #[test]
    fn health_and_ready_follow_the_shared_state() {
        let service = service();
        assert_eq!(service.handle(&request("/readyz", None)).status, 503);
        service.health.set_ready(true);
        assert_eq!(service.handle(&request("/readyz", None)).status, 200);

        assert_eq!(service.handle(&request("/healthz", None)).status, 200);
        service.health.degrade("p99 over ceiling");
        let degraded = service.handle(&request("/healthz", None));
        assert_eq!(degraded.status, 503);
        assert!(degraded.body.contains("p99 over ceiling"));
        service.health.clear_degraded();
        assert_eq!(service.handle(&request("/healthz", None)).status, 200);
    }

    #[test]
    fn alerts_endpoint_respects_n_and_rejects_garbage() {
        let service = service();
        for hour in 0..5 {
            service.history.record(&Alert {
                drive: dds_smartsim::DriveId(2),
                hour,
                severity: Severity::Critical,
                kind: AlertKind::VendorThreshold,
                suspected_type: dds_core::FailureType::Unknown,
                degradation: f64::NAN,
                estimated_remaining_hours: None,
                message: "threshold".to_string(),
            });
        }
        let two = service.handle(&request("/alerts", Some("n=2")));
        assert_eq!(two.status, 200);
        assert!(two.body.contains("\"returned\": 2"));
        dds_obs::json::validate(&two.body).expect("alerts JSON");
        assert_eq!(service.handle(&request("/alerts", Some("n=banana"))).status, 400);
        assert_eq!(service.handle(&request("/nope", None)).status, 404);
    }

    #[test]
    fn metrics_endpoints_refresh_uptime_and_quantiles() {
        let service = service();
        metrics::global().histogram("dds_service_test_seconds").observe(3e-5);
        let text = service.handle(&request("/metrics", None));
        assert_eq!(text.status, 200);
        assert!(text.body.contains("dds_uptime_seconds"));
        assert!(text.body.contains("dds_service_test_seconds_p99"));
        let json = service.handle(&request("/metrics.json", None));
        dds_obs::json::validate(&json.body).expect("metrics JSON");
    }

    #[test]
    fn model_endpoint_serves_provenance_and_generation() {
        let slot = Arc::new(ModelSlot::new());
        let service = MonitorService::new(Arc::new(AlertHistory::new(16)), HealthState::new())
            .with_model_slot(slot.clone());
        // Before a model exists: 503 training.
        let before = service.handle(&request("/model", None));
        assert_eq!(before.status, 503);
        assert!(before.body.contains("training"));
        assert_eq!(slot.generation(), 0);
        // After publishing: the provenance document plus the generation.
        assert_eq!(slot.publish("{\"magic\":\"dds-model\",\"seed\":\"7\"}".to_string()), 1);
        let after = service.handle(&request("/model", None));
        assert_eq!(after.status, 200);
        assert!(after.body.contains("\"generation\": 1"), "{}", after.body);
        assert!(after.body.contains("\"seed\":\"7\""));
        dds_obs::json::validate(&after.body).expect("model JSON");
        // A promotion re-publishes under the next generation.
        assert_eq!(slot.publish("{\"magic\":\"dds-model\",\"seed\":\"8\"}".to_string()), 2);
        let promoted = service.handle(&request("/model", None));
        assert!(promoted.body.contains("\"generation\": 2"), "{}", promoted.body);
        assert!(promoted.body.contains("\"seed\":\"8\""));
        dds_obs::json::validate(&promoted.body).expect("model JSON");
        // Without a slot the default service also answers 503.
        assert_eq!(self::service().handle(&request("/model", None)).status, 503);
    }

    #[test]
    fn drift_endpoint_serves_the_published_document() {
        // No slot: this deployment has no online-learning loop.
        assert_eq!(service().handle(&request("/drift", None)).status, 404);

        let slot = Arc::new(Mutex::new(String::new()));
        let service = MonitorService::new(Arc::new(AlertHistory::new(16)), HealthState::new())
            .with_drift_slot(Arc::clone(&slot));
        // Empty slot: still starting.
        assert_eq!(service.handle(&request("/drift", None)).status, 503);
        *slot.lock().unwrap() = "{\"examined\": 10, \"drifted\": 0}".to_string();
        let reply = service.handle(&request("/drift", None));
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"examined\": 10"));
        dds_obs::json::validate(&reply.body).expect("drift JSON");
    }

    #[test]
    fn promote_endpoint_rendezvous_with_the_serve_loop() {
        // No gate: promotion is disabled.
        let disabled = service().handle(&post("/model/promote", Vec::new()));
        assert_eq!(disabled.status, 503);
        assert!(disabled.body.contains("promotion disabled"));

        let gate = Arc::new(PromotionGate::new());
        let service = MonitorService::new(Arc::new(AlertHistory::new(16)), HealthState::new())
            .with_promotion_gate(Arc::clone(&gate));

        // A stand-in serve loop: answer the first request that shows up.
        let loop_gate = Arc::clone(&gate);
        let serve_loop = std::thread::spawn(move || loop {
            let waiters = loop_gate.take();
            if waiters.is_empty() {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            for waiter in waiters {
                let _ = waiter.send(PromotionOutcome {
                    status: 200,
                    body: "{\"status\": \"promoted\", \"generation\": 2}".to_string(),
                });
            }
            break;
        });
        let reply = service.handle(&post("/model/promote", Vec::new()));
        serve_loop.join().unwrap();
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"generation\": 2"), "{}", reply.body);
        dds_obs::json::validate(&reply.body).expect("promote JSON");

        // GET is a 405, like /ingest.
        assert_eq!(service.handle(&request("/model/promote", None)).status, 405);
    }

    fn post(path: &str, body: Vec<u8>) -> Request {
        Request { method: "POST".to_string(), path: path.to_string(), query: None, body }
    }

    #[test]
    fn ingest_endpoint_queues_sheds_and_rejects() {
        let queue = Arc::new(IngestQueue::bounded(1));
        let service = MonitorService::new(Arc::new(AlertHistory::new(16)), HealthState::new())
            .with_ingest(Arc::clone(&queue));

        // Binary batch: queued with a receipt.
        let batch = vec![(
            dds_smartsim::DriveId(3),
            dds_smartsim::HealthRecord { hour: 0, values: [1.0; dds_smartsim::NUM_ATTRIBUTES] },
        )];
        let reply = service.handle(&post("/ingest", crate::wire::encode_batch(&batch)));
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"queued\""), "{}", reply.body);
        assert!(reply.body.contains("\"records\": 1"), "{}", reply.body);

        // Queue full: the batch is shed with a 429.
        let reply = service.handle(&post("/ingest", crate::wire::encode_batch(&batch)));
        assert_eq!(reply.status, 429);
        assert!(reply.body.contains("\"shed\""), "{}", reply.body);
        assert_eq!(queue.counts().shed_batches, 1);

        // CSV chunks decode through the same endpoint.
        assert_eq!(queue.drain().len(), 1);
        let reply = service.handle(&post("/ingest", b"7,0,1,2,3,4,5,6,7,8,9,10,11,12\n".to_vec()));
        assert_eq!(reply.status, 200);

        // Garbage is a 400 with the wire error surfaced.
        let reply = service.handle(&post("/ingest", b"DDSB\x09garbage".to_vec()));
        assert_eq!(reply.status, 400);
        assert!(reply.body.contains("\"rejected\""), "{}", reply.body);

        // GET on /ingest and POST anywhere else are 405s.
        assert_eq!(service.handle(&request("/ingest", None)).status, 405);
        assert_eq!(service.handle(&post("/metrics", Vec::new())).status, 405);

        // Without a queue the endpoint is disabled.
        assert_eq!(self::service().handle(&post("/ingest", Vec::new())).status, 503);
    }

    #[test]
    fn shards_endpoint_serves_the_published_document() {
        // No slot: the deployment is not sharded.
        assert_eq!(service().handle(&request("/shards", None)).status, 404);

        let slot = Arc::new(Mutex::new(String::new()));
        let service = MonitorService::new(Arc::new(AlertHistory::new(16)), HealthState::new())
            .with_shards_slot(Arc::clone(&slot));
        // Empty slot: still starting.
        assert_eq!(service.handle(&request("/shards", None)).status, 503);
        *slot.lock().unwrap() = "{\"shards\": 2, \"per_shard\": []}".to_string();
        let reply = service.handle(&request("/shards", None));
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"shards\": 2"));
        dds_obs::json::validate(&reply.body).expect("shards JSON");
    }

    #[test]
    fn profile_endpoint_defaults_to_empty_object() {
        let service = service();
        let reply = service.handle(&request("/profile", None));
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, "{}");
    }

    #[test]
    fn trace_endpoint_serves_json_lines_with_n_and_rejects_garbage() {
        use dds_obs::journal::{BatchSpan, FlightRecorder};

        // Without a recorder, the deployment has no trace.
        assert_eq!(service().handle(&request("/trace", None)).status, 404);

        let recorder = Arc::new(FlightRecorder::new(16));
        let service = MonitorService::new(Arc::new(AlertHistory::new(16)), HealthState::new())
            .with_flight_recorder(Arc::clone(&recorder));
        // Empty recorder: an empty (but well-typed) NDJSON payload.
        let empty = service.handle(&request("/trace", None));
        assert_eq!(empty.status, 200);
        assert_eq!(empty.content_type, "application/x-ndjson");
        assert!(empty.body.is_empty());

        for i in 0..5u64 {
            recorder.record(BatchSpan {
                records: 10 + i,
                accepted: 10 + i,
                ..BatchSpan::default()
            });
        }
        let two = service.handle(&request("/trace", Some("n=2")));
        assert_eq!(two.status, 200);
        let rows: Vec<&str> = two.body.lines().collect();
        assert_eq!(rows.len(), 2);
        // Oldest-first tail of the lifetime sequence: batches 4 and 5.
        assert!(rows[0].contains("\"batch\": 4"), "{}", rows[0]);
        assert!(rows[1].contains("\"batch\": 5"), "{}", rows[1]);
        for row in rows {
            dds_obs::json::validate(row).expect("trace line JSON");
        }
        assert_eq!(service.handle(&request("/trace", Some("n=banana"))).status, 400);
    }

    #[test]
    fn timeseries_endpoint_serves_fleet_and_per_shard_windows() {
        use dds_obs::timeseries::{ShardSample, ShardSeriesStore, TimeSeriesStore};

        // Without a store, the deployment has no time series.
        assert_eq!(service().handle(&request("/timeseries", None)).status, 404);

        let registry = metrics::Registry::new();
        let store = Arc::new(TimeSeriesStore::new(16));
        store.push(Duration::from_secs(0), registry.snapshot());
        registry.counter("dds_monitor_records_ingested_total").add(500);
        registry.counter("dds_monitor_alerts_total").add(10);
        registry.histogram("dds_ingest_batch_seconds").observe(2e-3);
        store.push(Duration::from_secs(10), registry.snapshot());

        let shard_series = Arc::new(ShardSeriesStore::new(2, 16));
        for shard in 0..2 {
            shard_series.push(shard, Duration::from_secs(0), ShardSample::default());
            shard_series.push(
                shard,
                Duration::from_secs(10),
                ShardSample { accepted: 250, ..ShardSample::default() },
            );
        }

        let service = MonitorService::new(Arc::new(AlertHistory::new(16)), HealthState::new())
            .with_timeseries(Arc::clone(&store))
            .with_shard_series(Arc::clone(&shard_series));
        let reply = service.handle(&request("/timeseries", None));
        assert_eq!(reply.status, 200);
        assert_eq!(reply.content_type, "application/json");
        dds_obs::json::validate(&reply.body).expect("timeseries JSON");
        let doc = dds_obs::json::parse(&reply.body).expect("timeseries JSON");
        assert_eq!(doc.get("window_seconds").and_then(|v| v.as_u64()), Some(60));
        let fleet = doc.get("fleet").expect("fleet section");
        assert_eq!(fleet.get("ingest_per_sec").and_then(|v| v.as_f64()), Some(50.0));
        assert_eq!(fleet.get("alert_per_min").and_then(|v| v.as_f64()), Some(60.0));
        // Counters that never grew render as 0 rates; quantiles answer.
        assert!(fleet.get("batch_p99_seconds").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let shards = doc.get("per_shard").and_then(|v| v.as_array()).expect("per_shard");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].get("accepted_per_sec").and_then(|v| v.as_f64()), Some(25.0));

        // A fleet-only deployment serves an empty per_shard array.
        let fleet_only = MonitorService::new(Arc::new(AlertHistory::new(16)), HealthState::new())
            .with_timeseries(store);
        let reply = fleet_only.handle(&request("/timeseries", None));
        assert!(reply.body.contains("\"per_shard\": []"), "{}", reply.body);
    }

    #[test]
    fn every_route_declares_its_content_type() {
        // The satellite audit: every endpoint must carry an explicit,
        // correct Content-Type — JSON payloads as application/json, the
        // Prometheus exposition as versioned text/plain, traces as NDJSON.
        let service = service();
        for (path, expected) in [
            ("/", "text/plain; charset=utf-8"),
            ("/metrics", "text/plain; version=0.0.4"),
            ("/metrics.json", "application/json"),
            ("/healthz", "application/json"),
            ("/readyz", "application/json"),
            ("/alerts", "application/json"),
            ("/profile", "application/json"),
            ("/model", "application/json"),
            ("/nope", "text/plain; charset=utf-8"),
        ] {
            let reply = service.handle(&request(path, None));
            assert_eq!(reply.content_type, expected, "content type of {path}");
        }
        // POST receipts are JSON too (handled by the queue-less 503 here).
        assert_eq!(service.handle(&post("/ingest", Vec::new())).content_type, "application/json");
    }
}
