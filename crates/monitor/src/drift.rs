//! Model-relative drift detection for the serving path.
//!
//! A deployed model is only as good as the match between the stream it
//! scores and the window it was trained on. [`DriftDetector`] watches the
//! raw ingest stream *before* shard fan-out and compares every record
//! against the serving model's training metadata on two channels:
//!
//! * **ordering drift** — a record whose hour regresses or repeats for
//!   its drive (the wire form of clock skew and replayed batches). The
//!   training window's own disorder rate (the quality gate's quarantine
//!   fraction, [`DriftBaseline::expected_disorder`]) is subtracted as a
//!   baseline, so a model refit *on* a skewed stream stops flagging the
//!   same skew — promotion causally clears the drift signal.
//! * **range drift** — a value that normalizes outside the training
//!   scaler's `[-1, 1]` band by more than [`RANGE_MARGIN`]: the live
//!   distribution has left the bounds Eq. (1) was fitted on.
//!
//! Records are partitioned into `dds_drift_drifted_total` and
//! `dds_drift_clean_total` counters (always summing to
//! `dds_drift_records_total`), which the watchdog's
//! `SloRule::DriftBudget` turns into a windowed degraded/recovered
//! verdict. A running per-attribute mean-shift gauge
//! (`dds_drift_attr_shift_max`, in units of the training range) covers
//! slow distribution creep that never leaves the scaler band.
//!
//! All counters published through [`DriftDetector::publish`] are
//! monotonic: the drifted series is a high-watermark of the baseline
//! excess, and a baseline swap starts a fresh accounting window rather
//! than rewinding anything already published.

use crate::bundle::ModelBundle;
use dds_obs::metrics::Registry;
use dds_smartsim::{DriveId, HealthRecord, NUM_ATTRIBUTES};
use dds_stats::MinMaxScaler;
use std::collections::HashMap;

/// How far outside the training normalization band `[-1, 1]` a value may
/// extrapolate before it counts as range drift. Live fleets legitimately
/// exceed the training min/max a little; a quarter of the range is far
/// beyond healthy spread but well inside what a shifted distribution
/// produces.
pub const RANGE_MARGIN: f64 = 0.25;

/// An hour-counter regression of at least this much is read as counter
/// rollover (a long-soak collector wrapping its u32 hour counter), not as
/// ordering drift: replayed batches and clock skew regress by hours,
/// never by half the counter range. On rollover the drive's watermark
/// follows the stream instead of pinning every subsequent record as
/// disordered forever.
pub const HOUR_ROLLOVER_GAP: u32 = u32::MAX / 2;

/// Live RMSE may exceed the artifact's training RMSE by this factor
/// before the refit registers an RMSE-drift breach
/// (`dds_drift_rmse_breaches_total`).
pub const RMSE_BUDGET_RATIO: f64 = 1.5;

/// The training-time metadata drift is measured against: the serving
/// model's normalization bounds, its population means, and the disorder
/// rate its own training window carried.
#[derive(Debug, Clone)]
pub struct DriftBaseline {
    scaler: MinMaxScaler,
    population_means: [f64; NUM_ATTRIBUTES],
    expected_disorder: f64,
    /// Mean per-group test RMSE the serving model recorded at training
    /// time — the yardstick of the RMSE drift channel. `None` when the
    /// bundle carries no groups (or all-zero placeholder RMSE).
    training_rmse: Option<f64>,
}

impl DriftBaseline {
    /// Builds the baseline from a deployable bundle plus the disorder
    /// fraction of the window the bundle was trained on (`0.0` for a
    /// clean-trained model; `RefitOutcome::expected_disorder()` for a
    /// streaming refit).
    pub fn from_bundle(bundle: &ModelBundle, expected_disorder: f64) -> Self {
        let groups = bundle.groups();
        let mean_rmse = if groups.is_empty() {
            0.0
        } else {
            groups.iter().map(|g| g.rmse).sum::<f64>() / groups.len() as f64
        };
        DriftBaseline {
            scaler: bundle.scaler().clone(),
            population_means: *bundle.population_means(),
            expected_disorder: expected_disorder.clamp(0.0, 1.0),
            training_rmse: (mean_rmse.is_finite() && mean_rmse > 0.0).then_some(mean_rmse),
        }
    }

    /// The disorder fraction already present in the model's training
    /// window — the part of live disorder that is *not* drift.
    pub fn expected_disorder(&self) -> f64 {
        self.expected_disorder
    }

    /// The serving model's mean training RMSE, when it recorded one.
    pub fn training_rmse(&self) -> Option<f64> {
        self.training_rmse
    }
}

/// Streaming drift detector: feed it every raw record the serving path
/// ingests (pre-sanitization — drift wants to see exactly what the
/// collector delivered), call [`DriftDetector::publish`] once per tick,
/// and [`DriftDetector::swap_baseline`] when a new model is promoted.
#[derive(Debug)]
pub struct DriftDetector {
    baseline: DriftBaseline,
    /// Last hour seen per drive, for the ordering channel.
    last_hour: HashMap<DriveId, u32>,
    /// Records observed since the last baseline swap.
    examined: u64,
    /// Records flagged on any channel since the last swap (union, each
    /// record counts once).
    drifted: u64,
    /// Channel breakdown for `/drift` (a record can appear in both).
    disordered: u64,
    out_of_range: u64,
    /// Running raw sums per attribute for the mean-shift gauge.
    sums: [f64; NUM_ATTRIBUTES],
    counts: [u64; NUM_ATTRIBUTES],
    /// Publication watermarks within the current baseline window.
    published_examined: u64,
    published_drifted: u64,
    published_clean: u64,
    /// Baseline swaps performed (0 = still on the boot model).
    swaps: u64,
    /// Latest `(live, training)` RMSE pair recorded by a refit against
    /// the *current* baseline; `None` until the first refit with a
    /// serving prior (and again right after a promotion).
    rmse: Option<(f64, f64)>,
    /// Refit RMSE samples that breached [`RMSE_BUDGET_RATIO`] — lifetime
    /// monotonic, like `swaps`.
    rmse_breaches: u64,
    published_rmse_breaches: u64,
}

impl DriftDetector {
    /// Creates a detector measuring against the given baseline.
    pub fn new(baseline: DriftBaseline) -> Self {
        DriftDetector {
            baseline,
            last_hour: HashMap::new(),
            examined: 0,
            drifted: 0,
            disordered: 0,
            out_of_range: 0,
            sums: [0.0; NUM_ATTRIBUTES],
            counts: [0; NUM_ATTRIBUTES],
            published_examined: 0,
            published_drifted: 0,
            published_clean: 0,
            swaps: 0,
            rmse: None,
            rmse_breaches: 0,
            published_rmse_breaches: 0,
        }
    }

    /// Observes one raw record; returns `true` when it drifted on any
    /// channel.
    pub fn observe(&mut self, drive: DriveId, record: &HealthRecord) -> bool {
        self.examined += 1;

        let disordered = match self.last_hour.entry(drive) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                let last = *entry.get();
                if record.hour > last {
                    entry.insert(record.hour);
                    false
                } else if last - record.hour >= HOUR_ROLLOVER_GAP {
                    // Counter rollover, not replay: follow the stream so
                    // the wrapped drive doesn't read as disordered for
                    // the rest of the session.
                    entry.insert(record.hour);
                    false
                } else {
                    true
                }
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(record.hour);
                false
            }
        };

        let mut out_of_range = false;
        for (c, &value) in record.values.iter().enumerate() {
            if !value.is_finite() {
                // Missing sentinels are a quality problem, not necessarily
                // drift; the quality gate owns them. Skip the channel.
                continue;
            }
            self.sums[c] += value;
            self.counts[c] += 1;
            let normalized = self.baseline.scaler.transform_value(c, value);
            if normalized.abs() > 1.0 + RANGE_MARGIN {
                out_of_range = true;
            }
        }

        if disordered {
            self.disordered += 1;
        }
        if out_of_range {
            self.out_of_range += 1;
        }
        let drifted = disordered || out_of_range;
        if drifted {
            self.drifted += 1;
        }
        drifted
    }

    /// Observes a whole batch; returns how many records drifted.
    pub fn observe_batch(&mut self, batch: &[(DriveId, HealthRecord)]) -> u64 {
        batch.iter().filter(|(drive, record)| self.observe(*drive, record)).count() as u64
    }

    /// Drifted records in excess of the baseline's expected disorder —
    /// the quantity the drift budget meters. A stream exactly as
    /// disordered as the training window scores zero.
    pub fn excess_drifted(&self) -> u64 {
        let expected = (self.baseline.expected_disorder * self.examined as f64).ceil() as u64;
        self.drifted.saturating_sub(expected)
    }

    /// Fraction of the current window's records drifted beyond baseline
    /// (`0.0` on an empty window).
    pub fn drift_score(&self) -> f64 {
        if self.examined == 0 {
            0.0
        } else {
            self.excess_drifted() as f64 / self.examined as f64
        }
    }

    /// Largest per-attribute shift of the live running mean from the
    /// training population mean, in units of the training range.
    pub fn attr_shift_max(&self) -> f64 {
        let mut max_shift: f64 = 0.0;
        for c in 0..NUM_ATTRIBUTES {
            if self.counts[c] == 0 {
                continue;
            }
            let span = self.baseline.scaler.maxs()[c] - self.baseline.scaler.mins()[c];
            if span <= 0.0 {
                continue;
            }
            let live_mean = self.sums[c] / self.counts[c] as f64;
            let shift = (live_mean - self.baseline.population_means[c]).abs() / span;
            max_shift = max_shift.max(shift);
        }
        max_shift
    }

    /// Records the RMSE drift sample a refit produced: the serving
    /// trees' RMSE scored live on the refit window (`live`) next to the
    /// RMSE they recorded at training time (`training`). Samples where
    /// `live > training ×` [`RMSE_BUDGET_RATIO`] count as breaches in
    /// `dds_drift_rmse_breaches_total`. Non-finite samples are dropped.
    pub fn record_rmse(&mut self, live: f64, training: f64) {
        if !live.is_finite() || !training.is_finite() || training <= 0.0 {
            return;
        }
        self.rmse = Some((live, training));
        if live > training * RMSE_BUDGET_RATIO {
            self.rmse_breaches += 1;
        }
    }

    /// The latest `(live, training)` RMSE pair, if a refit recorded one
    /// against the current baseline.
    pub fn rmse_sample(&self) -> Option<(f64, f64)> {
        self.rmse
    }

    /// Live-over-training RMSE ratio (`1.0` = serving exactly as well as
    /// at training time; above [`RMSE_BUDGET_RATIO`] = breach).
    pub fn rmse_ratio(&self) -> Option<f64> {
        self.rmse.map(|(live, training)| live / training)
    }

    /// RMSE budget breaches recorded so far (lifetime monotonic).
    pub fn rmse_breaches(&self) -> u64 {
        self.rmse_breaches
    }

    /// Records observed since the last baseline swap.
    pub fn examined(&self) -> u64 {
        self.examined
    }

    /// Baseline swaps performed so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Resets the per-drive hour watermarks between replay epochs whose
    /// hour counters restart at zero — mirrors
    /// [`FleetMonitor::new_ingest_session`](crate::FleetMonitor::new_ingest_session),
    /// and must be called at the same epoch boundaries, or the first
    /// record of every drive's new epoch would read as ordering drift.
    pub fn new_session(&mut self) {
        self.last_hour.clear();
    }

    /// Swaps in a newly promoted model's baseline and opens a fresh
    /// accounting window: tallies, mean-shift state and publication
    /// watermarks reset, while everything already published to the
    /// registry counters stays (counters never rewind). The per-drive
    /// hour watermarks survive — the stream's continuity does not change
    /// because the model did.
    pub fn swap_baseline(&mut self, baseline: DriftBaseline) {
        self.baseline = baseline;
        self.examined = 0;
        self.drifted = 0;
        self.disordered = 0;
        self.out_of_range = 0;
        self.sums = [0.0; NUM_ATTRIBUTES];
        self.counts = [0; NUM_ATTRIBUTES];
        self.published_examined = 0;
        self.published_drifted = 0;
        self.published_clean = 0;
        // The RMSE pair described the *previous* serving model; the
        // breach tally is lifetime-monotonic and survives, like `swaps`.
        self.rmse = None;
        self.swaps += 1;
    }

    /// Publishes the detector's state into a metrics registry:
    /// `dds_drift_records_total`, `dds_drift_drifted_total` and
    /// `dds_drift_clean_total` counters (drifted + clean = records, all
    /// three monotonic) plus `dds_drift_score`,
    /// `dds_drift_attr_shift_max` and `dds_drift_expected_disorder`
    /// gauges. Call once per serve tick with the global registry, or
    /// with a local one in tests.
    pub fn publish(&mut self, registry: &Registry) {
        // Monotonic drifted series: high-watermark of the baseline
        // excess. Clean gets the rest, so the two always sum to records.
        // Every delta below is provably non-negative (watermarks only
        // move forward within a window, and a swap resets them all
        // together); the subtractions saturate anyway so an accounting
        // bug can never wrap a u64 and explode the published counters.
        let drifted_target = self.published_drifted.max(self.excess_drifted());
        let clean_target = self.examined.saturating_sub(drifted_target);

        registry
            .counter("dds_drift_records_total")
            .add(self.examined.saturating_sub(self.published_examined));
        registry
            .counter("dds_drift_drifted_total")
            .add(drifted_target.saturating_sub(self.published_drifted));
        registry
            .counter("dds_drift_clean_total")
            .add(clean_target.saturating_sub(self.published_clean));
        self.published_examined = self.examined;
        self.published_drifted = drifted_target;
        self.published_clean = clean_target.max(self.published_clean);

        registry.gauge("dds_drift_score").set(self.drift_score());
        registry.gauge("dds_drift_attr_shift_max").set(self.attr_shift_max());
        registry.gauge("dds_drift_expected_disorder").set(self.baseline.expected_disorder);

        // RMSE channel: gauges reflect the latest refit sample (0 until
        // one exists), the breach counter is published by watermark like
        // every other monotonic series here.
        let (live, training) = self.rmse.unwrap_or((0.0, 0.0));
        registry.gauge("dds_drift_rmse_live").set(live);
        registry.gauge("dds_drift_rmse_training").set(training);
        registry.gauge("dds_drift_rmse_ratio").set(self.rmse_ratio().unwrap_or(0.0));
        registry
            .counter("dds_drift_rmse_breaches_total")
            .add(self.rmse_breaches.saturating_sub(self.published_rmse_breaches));
        self.published_rmse_breaches = self.rmse_breaches;
    }

    /// Serializes the detector's state as one JSON object — the `/drift`
    /// endpoint's body.
    pub fn to_json(&self) -> String {
        let (rmse_live, rmse_training) = self.rmse.unwrap_or((0.0, 0.0));
        format!(
            "{{\"examined\": {}, \"drifted\": {}, \"excess_drifted\": {}, \
             \"disordered\": {}, \"out_of_range\": {}, \"expected_disorder\": {}, \
             \"drift_score\": {}, \"attr_shift_max\": {}, \"baseline_swaps\": {}, \
             \"rmse_live\": {}, \"rmse_training\": {}, \"rmse_ratio\": {}, \
             \"rmse_breaches\": {}}}",
            self.examined,
            self.drifted,
            self.excess_drifted(),
            self.disordered,
            self.out_of_range,
            dds_obs::json::number(self.baseline.expected_disorder),
            dds_obs::json::number(self.drift_score()),
            dds_obs::json::number(self.attr_shift_max()),
            self.swaps,
            dds_obs::json::number(rmse_live),
            dds_obs::json::number(rmse_training),
            dds_obs::json::number(self.rmse_ratio().unwrap_or(0.0)),
            self.rmse_breaches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_core::{Analysis, AnalysisConfig, CategorizationConfig};
    use dds_smartsim::stream::hour_ordered;
    use dds_smartsim::{FleetConfig, FleetSimulator};

    fn bundle(seed: u64) -> ModelBundle {
        let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(seed)).run();
        let config = AnalysisConfig {
            categorization: CategorizationConfig { run_svc: false, ..Default::default() },
            ..Default::default()
        };
        let report = Analysis::new(config).run(&dataset).unwrap();
        ModelBundle::from_analysis(&dataset, &report)
    }

    #[test]
    fn clean_stream_from_the_training_fleet_reads_as_clean() {
        let bundle = bundle(4_001);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(4_001)).run();
        let mut detector = DriftDetector::new(DriftBaseline::from_bundle(&bundle, 0.0));
        let records = hour_ordered(&live);
        let drifted = detector.observe_batch(&records);
        assert_eq!(drifted, 0, "the training fleet itself cannot drift from its own model");
        assert_eq!(detector.examined(), records.len() as u64);
        assert_eq!(detector.drift_score(), 0.0);
        assert!(detector.attr_shift_max() < 0.25, "live means sit near training means");
    }

    #[test]
    fn hour_skew_reads_as_ordering_drift_and_the_baseline_absorbs_it() {
        let bundle = bundle(4_002);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(4_003)).run();
        let mut records = hour_ordered(&live);
        // Skew ~2% of records back in time, like the chaos `skew` spec.
        let mut skewed = 0u64;
        for (i, (_, record)) in records.iter_mut().enumerate() {
            if i % 50 == 7 {
                record.hour = record.hour.saturating_sub(3);
                skewed += 1;
            }
        }

        let mut naive = DriftDetector::new(DriftBaseline::from_bundle(&bundle, 0.0));
        naive.observe_batch(&records);
        assert!(naive.excess_drifted() > 0, "skew must register as drift");
        assert!(
            naive.excess_drifted() <= 2 * skewed,
            "each skewed record disturbs at most itself and one successor"
        );

        // A baseline that already expects this much disorder (a model
        // refit on the skewed stream) absorbs it entirely.
        let expected = 2.0 * skewed as f64 / records.len() as f64;
        let mut refit = DriftDetector::new(DriftBaseline::from_bundle(&bundle, expected));
        refit.observe_batch(&records);
        assert_eq!(refit.excess_drifted(), 0, "expected disorder is not drift");
        assert_eq!(refit.drift_score(), 0.0);
    }

    #[test]
    fn out_of_range_values_read_as_range_drift() {
        let bundle = bundle(4_004);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(4_004)).run();
        let mut detector = DriftDetector::new(DriftBaseline::from_bundle(&bundle, 0.0));
        let mut records = hour_ordered(&live);
        for (i, (_, record)) in records.iter_mut().enumerate() {
            if i % 10 == 0 {
                // Push one attribute far past the training maximum.
                record.values[0] = bundle.scaler().maxs()[0] * 4.0 + 1_000.0;
            }
        }
        detector.observe_batch(&records);
        assert!(detector.excess_drifted() >= (records.len() / 10) as u64);
        assert!(detector.drift_score() > 0.05);
    }

    #[test]
    fn publish_is_monotonic_and_partitions_records() {
        let bundle = bundle(4_005);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(4_006)).run();
        let mut detector = DriftDetector::new(DriftBaseline::from_bundle(&bundle, 0.0));
        let registry = Registry::new();
        let records = hour_ordered(&live);

        let mut last = (0u64, 0u64, 0u64);
        for chunk in records.chunks(records.len() / 4 + 1) {
            detector.observe_batch(chunk);
            detector.publish(&registry);
            let snap = registry.snapshot();
            let now = (
                snap.counter_value("dds_drift_records_total").unwrap(),
                snap.counter_value("dds_drift_drifted_total").unwrap(),
                snap.counter_value("dds_drift_clean_total").unwrap(),
            );
            assert!(now.0 >= last.0 && now.1 >= last.1 && now.2 >= last.2, "monotonic");
            assert_eq!(now.1 + now.2, now.0, "drifted + clean = records");
            last = now;
        }
        assert_eq!(last.0, records.len() as u64);
    }

    #[test]
    fn swap_baseline_opens_a_fresh_window_without_rewinding_counters() {
        let bundle = bundle(4_007);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(4_008)).run();
        let mut detector = DriftDetector::new(DriftBaseline::from_bundle(&bundle, 0.0));
        let registry = Registry::new();

        let mut records = hour_ordered(&live);
        for (i, (_, record)) in records.iter_mut().enumerate() {
            if i % 20 == 3 {
                record.hour = record.hour.saturating_sub(2);
            }
        }
        detector.observe_batch(&records);
        detector.publish(&registry);
        let before = registry.snapshot();
        let drifted_before = before.counter_value("dds_drift_drifted_total").unwrap();
        assert!(drifted_before > 0);
        assert!(detector.drift_score() > 0.0);

        // Promote a model whose training window carried the same skew.
        detector.swap_baseline(DriftBaseline::from_bundle(&bundle, 0.12));
        assert_eq!(detector.swaps(), 1);
        assert_eq!(detector.drift_score(), 0.0, "the new window starts clean");

        detector.new_session();
        detector.observe_batch(&records);
        detector.publish(&registry);
        let after = registry.snapshot();
        assert_eq!(
            after.counter_value("dds_drift_drifted_total").unwrap(),
            drifted_before,
            "the refit baseline absorbs the skew — no new drifted records"
        );
        assert!(
            after.counter_value("dds_drift_clean_total").unwrap()
                > before.counter_value("dds_drift_clean_total").unwrap(),
            "the same stream now publishes as clean"
        );
        assert_eq!(
            after.counter_value("dds_drift_records_total").unwrap(),
            2 * records.len() as u64
        );
    }

    #[test]
    fn hour_rollover_is_not_ordering_drift_but_replay_still_is() {
        let bundle = bundle(4_010);
        let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(4_010)).run();
        let mut detector = DriftDetector::new(DriftBaseline::from_bundle(&bundle, 0.0));
        let (drive, record) = hour_ordered(&live).remove(0);

        // Run the drive's hour counter up to the top of the u32 range,
        // then wrap: the post-wrap record must read clean, and the
        // watermark must follow the wrapped stream.
        let mut late = record.clone();
        late.hour = u32::MAX - 2;
        assert!(!detector.observe(drive, &late));
        let mut wrapped = record.clone();
        wrapped.hour = 1;
        assert!(!detector.observe(drive, &wrapped), "rollover is not drift");
        let mut next = record.clone();
        next.hour = 2;
        assert!(!detector.observe(drive, &next), "post-rollover stream continues cleanly");

        // An ordinary regression (replayed batch) still drifts.
        let mut replayed = record.clone();
        replayed.hour = 1;
        assert!(detector.observe(drive, &replayed), "small regressions stay ordering drift");
        assert_eq!(detector.excess_drifted(), 1);
    }

    #[test]
    fn rmse_channel_tracks_breaches_and_publishes_monotonically() {
        let bundle = bundle(4_011);
        let mut detector = DriftDetector::new(DriftBaseline::from_bundle(&bundle, 0.0));
        let registry = Registry::new();
        assert!(detector.rmse_sample().is_none());

        // Within budget: recorded, no breach.
        detector.record_rmse(0.10, 0.09);
        assert_eq!(detector.rmse_breaches(), 0);
        assert!(detector.rmse_ratio().unwrap() > 1.0);
        detector.publish(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("dds_drift_rmse_breaches_total").unwrap(), 0);

        // Past budget: one breach, published exactly once.
        detector.record_rmse(0.09 * RMSE_BUDGET_RATIO * 1.1, 0.09);
        assert_eq!(detector.rmse_breaches(), 1);
        detector.publish(&registry);
        detector.publish(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("dds_drift_rmse_breaches_total").unwrap(), 1);

        // Non-finite and zero-training samples are dropped.
        detector.record_rmse(f64::NAN, 0.09);
        detector.record_rmse(0.5, 0.0);
        assert_eq!(detector.rmse_breaches(), 1);

        // Promotion clears the sample but not the lifetime breach tally.
        detector.swap_baseline(DriftBaseline::from_bundle(&bundle, 0.0));
        assert!(detector.rmse_sample().is_none());
        assert_eq!(detector.rmse_breaches(), 1);
        detector.publish(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("dds_drift_rmse_breaches_total").unwrap(), 1);
    }

    #[test]
    fn baseline_carries_training_rmse_from_the_bundle() {
        let bundle = bundle(4_012);
        let baseline = DriftBaseline::from_bundle(&bundle, 0.0);
        let expected = bundle.groups().iter().map(|g| g.rmse).sum::<f64>()
            / bundle.groups().len() as f64;
        assert_eq!(baseline.training_rmse().unwrap().to_bits(), expected.to_bits());
    }

    #[test]
    fn json_shape_is_stable() {
        let bundle = bundle(4_009);
        let detector = DriftDetector::new(DriftBaseline::from_bundle(&bundle, 0.25));
        let json = detector.to_json();
        for key in [
            "\"examined\"",
            "\"drifted\"",
            "\"excess_drifted\"",
            "\"disordered\"",
            "\"out_of_range\"",
            "\"expected_disorder\"",
            "\"drift_score\"",
            "\"attr_shift_max\"",
            "\"baseline_swaps\"",
            "\"rmse_live\"",
            "\"rmse_training\"",
            "\"rmse_ratio\"",
            "\"rmse_breaches\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
