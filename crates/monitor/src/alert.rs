//! Alert types emitted by the monitor.

use dds_core::FailureType;
use dds_smartsim::DriveId;
use std::fmt;

/// Escalation level of an alert. Ordered: `Watch < Warning < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Early drift: predicted degradation below the watch level.
    Watch,
    /// Sustained degradation: schedule data rescue.
    Warning,
    /// Failure imminent: act now.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Severity::Watch => "watch",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        };
        f.write_str(name)
    }
}

/// What triggered the alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// The degradation predictor crossed a severity level.
    DegradationPrediction,
    /// A vendor health value dropped below its conservative threshold.
    VendorThreshold,
    /// The drive runs persistently hotter than the good population — the
    /// §V-A precursor of logical failures.
    ThermalRisk,
    /// A drive with a latched severity now matches a *different* failure
    /// type's Table II profile than previously announced. Each type has its
    /// own degradation signature (§IV-C), so the remaining-time horizon can
    /// change by orders of magnitude — the operator must see the revised
    /// diagnosis even though the severity ladder has already topped out.
    TypeReclassification,
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AlertKind::DegradationPrediction => "degradation_prediction",
            AlertKind::VendorThreshold => "vendor_threshold",
            AlertKind::ThermalRisk => "thermal_risk",
            AlertKind::TypeReclassification => "type_reclassification",
        };
        f.write_str(name)
    }
}

/// One monitoring alert.
#[derive(Debug, Clone)]
pub struct Alert {
    /// The drive concerned.
    pub drive: DriveId,
    /// Collection hour of the triggering record.
    pub hour: u32,
    /// Escalation level.
    pub severity: Severity,
    /// What fired.
    pub kind: AlertKind,
    /// The failure type whose model scored the drive worst.
    pub suspected_type: FailureType,
    /// The predicted degradation value (`1` healthy … `−1` failing).
    pub degradation: f64,
    /// Estimated hours before failure from the suspected type's signature,
    /// when the signature is invertible and the drive is degrading.
    pub estimated_remaining_hours: Option<f64>,
    /// Human-readable summary.
    pub message: String,
}

impl Alert {
    /// Serializes the alert as one JSON object — the `/alerts` endpoint's
    /// row format. Non-finite degradations (threshold and thermal alerts
    /// carry `NaN`) render as `null`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"drive\": \"{}\", \"hour\": {}, \"severity\": \"{}\", \"kind\": \"{}\", \
             \"suspected_type\": \"{}\", \"degradation\": {}, \
             \"estimated_remaining_hours\": {}, \"message\": \"{}\"}}",
            dds_obs::json::escape(&self.drive.to_string()),
            self.hour,
            self.severity,
            self.kind,
            dds_obs::json::escape(&self.suspected_type.to_string()),
            dds_obs::json::number(self.degradation),
            self.estimated_remaining_hours
                .map_or_else(|| "null".to_string(), dds_obs::json::number),
            dds_obs::json::escape(&self.message),
        )
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} @h{}: {} (degradation {:+.2}{})",
            self.severity,
            self.drive,
            self.hour,
            self.message,
            self.degradation,
            match self.estimated_remaining_hours {
                Some(h) => format!(", ~{h:.0} h to failure"),
                None => String::new(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_drives_escalation() {
        assert!(Severity::Watch < Severity::Warning);
        assert!(Severity::Warning < Severity::Critical);
        assert_eq!(Severity::Critical.to_string(), "critical");
    }

    #[test]
    fn alert_display_is_complete() {
        let alert = Alert {
            drive: DriveId(7),
            hour: 42,
            severity: Severity::Warning,
            kind: AlertKind::DegradationPrediction,
            suspected_type: FailureType::BadSector,
            degradation: -0.31,
            estimated_remaining_hours: Some(120.0),
            message: "bad sector failures suspected".to_string(),
        };
        let text = alert.to_string();
        assert!(text.contains("warning"));
        assert!(text.contains("drive#7"));
        assert!(text.contains("~120 h"));
        assert!(text.contains("-0.31"));
    }
}
