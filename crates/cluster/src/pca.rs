//! Principal component analysis via the covariance matrix and Jacobi
//! eigendecomposition.
//!
//! Fig. 4 of the paper shows the three failure groups in the plane of the
//! first two principal components of the 30-feature failure records.
//! [`PcaModel::fit`] + [`PcaModel::project`] regenerate that projection.

use dds_stats::correlation::covariance_matrix;
use dds_stats::{Matrix, StatsError};

/// A fitted PCA model: column means and the leading eigenvectors of the
/// covariance matrix.
///
/// # Example
///
/// ```
/// use dds_cluster::PcaModel;
///
/// // Points along the diagonal: the first component captures ~everything.
/// let points: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64 * 2.0]).collect();
/// let pca = PcaModel::fit(&points, 2).unwrap();
/// assert!(pca.explained_variance_ratio()[0] > 0.999);
/// let projected = pca.project(&points).unwrap();
/// assert_eq!(projected[0].len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PcaModel {
    means: Vec<f64>,
    /// Components as rows (each a unit vector in input space).
    components: Vec<Vec<f64>>,
    eigenvalues: Vec<f64>,
    total_variance: f64,
}

impl PcaModel {
    /// Fits a PCA with `n_components` components on row-observations.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] / [`StatsError::DimensionMismatch`]
    /// for invalid shapes and [`StatsError::InvalidParameter`] when
    /// `n_components` is zero or exceeds the input dimension.
    pub fn fit(points: &[Vec<f64>], n_components: usize) -> Result<Self, StatsError> {
        if points.is_empty() || points[0].is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let dim = points[0].len();
        if n_components == 0 || n_components > dim {
            return Err(StatsError::InvalidParameter(format!(
                "n_components {n_components} must be in 1..={dim}"
            )));
        }
        let cov: Matrix = covariance_matrix(points)?;
        let eig = cov.symmetric_eigen()?;
        let mut means = vec![0.0; dim];
        for p in points {
            for (m, v) in means.iter_mut().zip(p) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= points.len() as f64;
        }
        let total_variance: f64 = eig.eigenvalues.iter().map(|&l| l.max(0.0)).sum();
        let components: Vec<Vec<f64>> =
            (0..n_components).map(|c| eig.eigenvectors.column(c)).collect();
        let eigenvalues = eig.eigenvalues[..n_components].to_vec();
        Ok(PcaModel { means, components, eigenvalues, total_variance })
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Eigenvalues (variances) of the retained components, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance captured by each retained component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance <= 0.0 {
            return vec![0.0; self.components.len()];
        }
        self.eigenvalues.iter().map(|&l| l.max(0.0) / self.total_variance).collect()
    }

    /// Projects one point onto the retained components.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] for a point of the wrong
    /// dimension.
    pub fn project_point(&self, point: &[f64]) -> Result<Vec<f64>, StatsError> {
        if point.len() != self.means.len() {
            return Err(StatsError::DimensionMismatch {
                expected: self.means.len(),
                actual: point.len(),
            });
        }
        Ok(self
            .components
            .iter()
            .map(|comp| {
                comp.iter().zip(point.iter().zip(&self.means)).map(|(c, (v, m))| c * (v - m)).sum()
            })
            .collect())
    }

    /// Projects many points.
    ///
    /// # Errors
    ///
    /// Propagates [`project_point`](Self::project_point) errors.
    pub fn project(&self, points: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, StatsError> {
        points.iter().map(|p| self.project_point(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_component_aligns_with_dominant_direction() {
        // Variance along x is 100x the variance along y.
        let points: Vec<Vec<f64>> =
            (0..40).map(|i| vec![(i as f64) * 1.0, ((i % 2) as f64) * 0.1]).collect();
        let pca = PcaModel::fit(&points, 2).unwrap();
        let c0 = &pca.components[0];
        assert!(c0[0].abs() > 0.99, "first component should be ~x axis: {c0:?}");
        let ratios = pca.explained_variance_ratio();
        assert!(ratios[0] > 0.99);
        assert!((ratios.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn projection_centers_data() {
        let points: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 5.0]).collect();
        let pca = PcaModel::fit(&points, 1).unwrap();
        let projected = pca.project(&points).unwrap();
        let mean: f64 = projected.iter().map(|p| p[0]).sum::<f64>() / 10.0;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn projection_preserves_pairwise_distance_in_full_rank() {
        let points = vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 6.0, 1.0],
            vec![0.0, -1.0, 2.0],
            vec![2.0, 2.0, 2.0],
            vec![5.0, 0.0, 0.0],
        ];
        let pca = PcaModel::fit(&points, 3).unwrap();
        let proj = pca.project(&points).unwrap();
        for i in 0..points.len() {
            for j in 0..points.len() {
                let orig = dds_stats::euclidean(&points[i], &points[j]).unwrap();
                let new = dds_stats::euclidean(&proj[i], &proj[j]).unwrap();
                assert!((orig - new).abs() < 1e-8, "distance distorted: {orig} vs {new}");
            }
        }
    }

    #[test]
    fn constant_data_has_zero_explained_variance() {
        let points = vec![vec![3.0, 3.0]; 8];
        let pca = PcaModel::fit(&points, 1).unwrap();
        assert_eq!(pca.explained_variance_ratio(), vec![0.0]);
        let proj = pca.project_point(&[3.0, 3.0]).unwrap();
        assert!(proj[0].abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert!(PcaModel::fit(&[], 1).is_err());
        let points = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert!(PcaModel::fit(&points, 0).is_err());
        assert!(PcaModel::fit(&points, 3).is_err());
        let pca = PcaModel::fit(&points, 1).unwrap();
        assert!(pca.project_point(&[1.0]).is_err());
        assert_eq!(pca.n_components(), 1);
        assert_eq!(pca.eigenvalues().len(), 1);
    }
}
