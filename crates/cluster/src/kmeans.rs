//! K-means clustering with k-means++ seeding, Lloyd iterations and
//! multi-restart selection.
//!
//! The paper clusters the 433 failure records for k = 1..10 and picks the
//! elbow of the mean distance from records to their centroids (Fig. 3).
//! [`KMeansResult::mean_within_cluster_distance`] is that statistic, and
//! [`elbow_curve`] reproduces the sweep.

use dds_stats::par::{par_chunks_reduce, par_generate, stream_seed, Parallelism};
use dds_stats::{euclidean, squared_euclidean, ColMatrix, StatsError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fixed accumulation chunk for the centroid-update reduction. A constant
/// (never derived from the thread count) so floating-point sums associate
/// identically in sequential and parallel runs.
const UPDATE_CHUNK: usize = 512;

/// Points per cache block of the assignment kernel: 256 points × 8 bytes =
/// 2 KiB per attribute column slice, so a block's working set (all
/// attributes + the distance accumulators) stays L1/L2-resident while every
/// centroid streams over it. Purely a traversal parameter — each point's
/// distance still accumulates dimensions in order, so the value is
/// bit-identical for any block size.
const ASSIGN_BLOCK: usize = 256;

/// Configuration for a [`KMeans`] run.
///
/// # Example
///
/// ```
/// use dds_cluster::KMeansConfig;
///
/// let config = KMeansConfig::new(3).with_seed(7).with_restarts(5);
/// assert_eq!(config.k, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iterations: usize,
    /// Number of independent k-means++ restarts; the lowest-inertia run
    /// wins.
    pub restarts: usize,
    /// Convergence threshold on centroid movement (squared distance).
    pub tolerance: f64,
    /// RNG seed for seeding and restarts.
    pub seed: u64,
    /// Parallelism across restarts and, within a restart, across points.
    /// Never affects the fitted result: every restart draws from its own
    /// seed-derived stream and reductions run in fixed chunk order.
    pub parallelism: Parallelism,
}

impl KMeansConfig {
    /// Creates a configuration with `k` clusters and sensible defaults
    /// (100 iterations, 8 restarts, 1e-9 tolerance).
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iterations: 100,
            restarts: 8,
            tolerance: 1e-9,
            seed: 0xC1A5,
            parallelism: Parallelism::Auto,
        }
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the parallelism mode.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the number of restarts.
    #[must_use]
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Sets the iteration cap.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }
}

/// The K-means algorithm (Lloyd's, k-means++ init).
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KMeansConfig,
}

impl KMeans {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: KMeansConfig) -> Self {
        KMeans { config }
    }

    /// Clusters `points` (rows of equal dimension).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for no points,
    /// [`StatsError::DimensionMismatch`] for ragged rows, and
    /// [`StatsError::InsufficientData`] when there are fewer points than
    /// clusters.
    pub fn fit(&self, points: &[Vec<f64>]) -> Result<KMeansResult, StatsError> {
        if points.is_empty() || points[0].is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let dim = points[0].len();
        for p in points {
            if p.len() != dim {
                return Err(StatsError::DimensionMismatch { expected: dim, actual: p.len() });
            }
        }
        if points.len() < self.config.k {
            return Err(StatsError::InsufficientData { needed: self.config.k, got: points.len() });
        }
        if self.config.k == 0 {
            return Err(StatsError::InvalidParameter("k must be positive".to_string()));
        }
        // Every restart draws from its own seed-derived stream, so restarts
        // can run in any order — or concurrently — and reproduce the
        // sequential result exactly. When restarts run in parallel, each
        // restart's inner loops stay sequential (no nested thread fan-out);
        // with a single restart the inner loops get the whole budget.
        let _span = dds_obs::span!(
            dds_obs::Level::Debug,
            "kmeans.fit",
            k = self.config.k,
            points = points.len(),
            restarts = self.config.restarts,
        );
        let metrics = dds_obs::metrics::global();
        metrics.counter("dds_kmeans_fits_total").inc();
        metrics.counter("dds_kmeans_restarts_total").add(self.config.restarts as u64);
        let restarts = self.config.restarts;
        let inner = if restarts > 1 { Parallelism::Sequential } else { self.config.parallelism };
        // Column-major copy of the points, shared by all restarts: the
        // assignment and update kernels stream one attribute at a time.
        let columns = ColMatrix::from_rows(points)?;
        let runs = par_generate(self.config.parallelism, restarts, |r| {
            // On parallel worker threads this event has no parent span —
            // span nesting is per-thread by design.
            dds_obs::event!(dds_obs::Level::Trace, "kmeans.restart", restart = r);
            let mut rng = StdRng::seed_from_u64(stream_seed(self.config.seed, r as u64));
            self.fit_once(points, &columns, &mut rng, inner)
        });
        // Lowest inertia wins; ties break to the lowest restart index
        // (the order a sequential scan would keep).
        let mut best: Option<KMeansResult> = None;
        for run in runs {
            let result = run?;
            if best.as_ref().is_none_or(|b| result.inertia() < b.inertia()) {
                best = Some(result);
            }
        }
        let best = best.expect("at least one restart");
        dds_obs::event!(dds_obs::Level::Trace, "kmeans.converged", inertia = best.inertia());
        Ok(best)
    }

    /// Warm-starts a single Lloyd refinement from `initial` centroids: no
    /// k-means++ seeding, no restarts, no RNG at all. One streaming
    /// mini-batch pass ([`StreamingKMeans`]) first pulls the centroids
    /// toward the new points, then the same deterministic Lloyd loop as
    /// [`fit`](Self::fit) polishes to a local optimum. This is the
    /// incremental-refit entry: the prior artifact's centroids come in,
    /// a refined clustering of the new window comes out, at the cost of
    /// one fit instead of an elbow sweep times restarts.
    ///
    /// `k` is taken from `initial` (the config's `k` is ignored);
    /// `max_iterations`, `tolerance` and `parallelism` apply as in `fit`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for no points or no initial
    /// centroids, [`StatsError::DimensionMismatch`] for ragged rows or
    /// centroids of the wrong dimension, and
    /// [`StatsError::InsufficientData`] when there are fewer points than
    /// centroids.
    pub fn refine(
        &self,
        points: &[Vec<f64>],
        initial: &[Vec<f64>],
    ) -> Result<KMeansResult, StatsError> {
        if points.is_empty() || points[0].is_empty() || initial.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let dim = points[0].len();
        for p in points {
            if p.len() != dim {
                return Err(StatsError::DimensionMismatch { expected: dim, actual: p.len() });
            }
        }
        for c in initial {
            if c.len() != dim {
                return Err(StatsError::DimensionMismatch { expected: dim, actual: c.len() });
            }
        }
        if points.len() < initial.len() {
            return Err(StatsError::InsufficientData {
                needed: initial.len(),
                got: points.len(),
            });
        }
        let _span = dds_obs::span!(
            dds_obs::Level::Debug,
            "kmeans.refine",
            k = initial.len(),
            points = points.len(),
        );
        dds_obs::metrics::global().counter("dds_kmeans_refines_total").inc();
        let par = self.config.parallelism;
        let columns = ColMatrix::from_rows(points)?;
        let mut streaming = StreamingKMeans::new(initial.to_vec())?;
        streaming.fold_columns(&columns, par)?;
        self.lloyd(points, &columns, streaming.into_centroids(), par)
    }

    fn fit_once(
        &self,
        points: &[Vec<f64>],
        columns: &ColMatrix,
        rng: &mut StdRng,
        par: Parallelism,
    ) -> Result<KMeansResult, StatsError> {
        let centroids = plus_plus_init(points, self.config.k, rng)?;
        self.lloyd(points, columns, centroids, par)
    }

    /// The Lloyd loop shared by [`fit`](Self::fit) (after k-means++
    /// seeding) and [`refine`](Self::refine) (after the streaming pass):
    /// assignment and update steps draw no random numbers and accumulate
    /// in fixed chunk order, so the result is a pure function of
    /// `(points, centroids)` at any thread count.
    fn lloyd(
        &self,
        points: &[Vec<f64>],
        columns: &ColMatrix,
        mut centroids: Vec<Vec<f64>>,
        par: Parallelism,
    ) -> Result<KMeansResult, StatsError> {
        let k = centroids.len();
        let dim = points[0].len();
        let mut assignments = vec![0usize; points.len()];
        for _ in 0..self.config.max_iterations {
            // Assignment step: each point independently finds its nearest
            // centroid, computed block-by-block over attribute columns.
            let assigned = assign_blocks(columns, &centroids, par);
            for (slot, &(a, _)) in assignments.iter_mut().zip(&assigned) {
                *slot = a;
            }
            // Update step: accumulate per-cluster sums over fixed-size
            // chunks, merged in chunk order so the floating-point result is
            // identical for every thread count. Within a chunk the loop
            // runs attribute-outer over contiguous columns; each
            // (cluster, attribute) accumulator still receives its points in
            // chunk order, so the sums match the row-major loop bit for
            // bit.
            let (mut new_centroids, counts) = par_chunks_reduce(
                par,
                &assignments,
                UPDATE_CHUNK,
                || (vec![vec![0.0; dim]; k], vec![0usize; k]),
                |(mut sums, mut counts), base, chunk| {
                    for &a in chunk {
                        counts[a] += 1;
                    }
                    // `d` addresses both the column and the second level
                    // of `sums[a][d]`, so an iterator can't replace it.
                    #[allow(clippy::needless_range_loop)]
                    for d in 0..dim {
                        let col = &columns.col(d)[base..base + chunk.len()];
                        for (&a, &v) in chunk.iter().zip(col) {
                            sums[a][d] += v;
                        }
                    }
                    (sums, counts)
                },
                |(mut sums, mut counts), (other_sums, other_counts)| {
                    for (sum, other) in sums.iter_mut().zip(other_sums) {
                        for (c, v) in sum.iter_mut().zip(other) {
                            *c += v;
                        }
                    }
                    for (count, other) in counts.iter_mut().zip(other_counts) {
                        *count += other;
                    }
                    (sums, counts)
                },
            );
            for (centroid, count) in new_centroids.iter_mut().zip(&counts) {
                if *count == 0 {
                    // Re-seed an empty cluster at the point farthest from
                    // its centroid.
                    let far = farthest_point(points, &centroids)?;
                    centroid.clone_from(&points[far]);
                } else {
                    for v in centroid.iter_mut() {
                        *v /= *count as f64;
                    }
                }
            }
            // Convergence check.
            let moved: f64 = centroids
                .iter()
                .zip(&new_centroids)
                .map(|(a, b)| squared_euclidean(a, b))
                .sum::<Result<f64, _>>()?;
            centroids = new_centroids;
            if moved < self.config.tolerance {
                break;
            }
        }
        // Final assignment + statistics; the scalar sums accumulate in
        // point order regardless of how the distances were computed.
        let mut inertia = 0.0;
        let mut distance_sum = 0.0;
        let finals = assign_blocks(columns, &centroids, par);
        for (slot, &(a, d2)) in assignments.iter_mut().zip(&finals) {
            *slot = a;
            inertia += d2;
            distance_sum += d2.sqrt();
        }
        Ok(KMeansResult {
            centroids,
            assignments,
            inertia,
            mean_within_cluster_distance: distance_sum / points.len() as f64,
        })
    }
}

/// Nearest centroid `(index, squared distance)` for every point, block by
/// block over the column-major layout: within a block, each centroid's
/// attribute columns stream over per-point accumulators, so the inner loop
/// is a contiguous, auto-vectorizable sweep across points. Every point's
/// distance still sums its dimensions in order (the accumulators are
/// per-point), and the winner is folded over centroids in ascending index
/// with a strictly-less comparison — both exactly as [`nearest_centroid`]
/// does, so results are bit-identical.
fn assign_blocks(
    columns: &ColMatrix,
    centroids: &[Vec<f64>],
    par: Parallelism,
) -> Vec<(usize, f64)> {
    assign_block_range(columns, 0, columns.num_rows(), centroids, par)
}

/// [`assign_blocks`] restricted to rows `[from, to)` — the chunk-sized
/// assignment step of the streaming fold, bit-identical to the full pass
/// over the same rows.
fn assign_block_range(
    columns: &ColMatrix,
    from: usize,
    to: usize,
    centroids: &[Vec<f64>],
    par: Parallelism,
) -> Vec<(usize, f64)> {
    let n = to - from;
    let blocks = par_generate(par, n.div_ceil(ASSIGN_BLOCK), |b| {
        let start = from + b * ASSIGN_BLOCK;
        let end = (start + ASSIGN_BLOCK).min(to);
        let mut best = vec![(0usize, f64::INFINITY); end - start];
        let mut d2 = vec![0.0f64; end - start];
        for (ci, centroid) in centroids.iter().enumerate() {
            d2.fill(0.0);
            for (d, &cd) in centroid.iter().enumerate() {
                for (acc, &x) in d2.iter_mut().zip(&columns.col(d)[start..end]) {
                    let diff = x - cd;
                    *acc += diff * diff;
                }
            }
            for (slot, &v) in best.iter_mut().zip(&d2) {
                if v < slot.1 {
                    *slot = (ci, v);
                }
            }
        }
        best
    });
    blocks.into_iter().flatten().collect()
}

fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> Result<(usize, f64), StatsError> {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d2 = squared_euclidean(point, c)?;
        if d2 < best.1 {
            best = (i, d2);
        }
    }
    Ok(best)
}

fn farthest_point(points: &[Vec<f64>], centroids: &[Vec<f64>]) -> Result<usize, StatsError> {
    let mut best = (0usize, -1.0);
    for (i, p) in points.iter().enumerate() {
        let (_, d2) = nearest_centroid(p, centroids)?;
        if d2 > best.1 {
            best = (i, d2);
        }
    }
    Ok(best.0)
}

/// k-means++ initialization: first centroid uniform, then proportional to
/// squared distance from the nearest chosen centroid.
fn plus_plus_init(
    points: &[Vec<f64>],
    k: usize,
    rng: &mut StdRng,
) -> Result<Vec<Vec<f64>>, StatsError> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    while centroids.len() < k {
        let mut weights = Vec::with_capacity(points.len());
        let mut total = 0.0;
        for p in points {
            let (_, d2) = nearest_centroid(p, &centroids)?;
            weights.push(d2);
            total += d2;
        }
        let idx = if total <= 0.0 {
            // All points coincide with existing centroids: pick uniformly.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in weights.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[idx].clone());
    }
    Ok(centroids)
}

/// Outcome of a K-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    centroids: Vec<Vec<f64>>,
    assignments: Vec<usize>,
    inertia: f64,
    mean_within_cluster_distance: f64,
}

impl KMeansResult {
    /// Final centroids (k rows).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Cluster index per input point.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Sum of squared distances to assigned centroids.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Mean Euclidean distance from points to their centroid — the y-axis
    /// of the paper's Fig. 3 elbow plot.
    pub fn mean_within_cluster_distance(&self) -> f64 {
        self.mean_within_cluster_distance
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Sizes of each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Index of the point closest to each centroid (the paper's "centroid
    /// failure" representative drives of Fig. 5); `None` for clusters that
    /// ended up empty (possible when many points coincide).
    ///
    /// # Errors
    ///
    /// Propagates distance shape errors if `points` differ in dimension
    /// from the fit.
    pub fn medoids(&self, points: &[Vec<f64>]) -> Result<Vec<Option<usize>>, StatsError> {
        let mut best: Vec<(Option<usize>, f64)> = vec![(None, f64::INFINITY); self.k()];
        for (i, p) in points.iter().enumerate() {
            let a = self.assignments[i];
            let d = euclidean(p, &self.centroids[a])?;
            if d < best[a].1 {
                best[a] = (Some(i), d);
            }
        }
        Ok(best.into_iter().map(|(i, _)| i).collect())
    }
}

/// Streaming (mini-batch) K-means centroid accumulator: fold points in,
/// read refined centroids out, without ever holding more than one chunk's
/// assignments in memory.
///
/// Each `UPDATE_CHUNK`-sized (512-point) chunk is assigned against the centroids as
/// they stood at the chunk's start (block-wise over columns, so the
/// assignment kernel is the same auto-vectorizable sweep the batch fit
/// uses), then the running-mean update
/// `c += (x − c) / count` is applied *sequentially in point order* — the
/// classic mini-batch rule, with a per-centroid observation count as the
/// learning-rate schedule. Chunks are processed in order and the update
/// loop never fans out, so the folded centroids are a pure function of
/// `(initial, point order)` at any [`Parallelism`] mode.
///
/// # Example
///
/// ```
/// use dds_cluster::StreamingKMeans;
///
/// let mut stream = StreamingKMeans::new(vec![vec![0.0], vec![10.0]]).unwrap();
/// stream.fold(&[vec![1.0], vec![9.0], vec![1.0], vec![11.0]]).unwrap();
/// let centroids = stream.centroids();
/// assert!(centroids[0][0] < 5.0 && centroids[1][0] > 5.0);
/// assert_eq!(stream.observations(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingKMeans {
    centroids: Vec<Vec<f64>>,
    counts: Vec<u64>,
    parallelism: Parallelism,
}

impl StreamingKMeans {
    /// Starts the stream from `initial` centroids (typically a prior
    /// artifact's) with zeroed observation counts.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for no centroids and
    /// [`StatsError::DimensionMismatch`] for ragged ones.
    pub fn new(initial: Vec<Vec<f64>>) -> Result<Self, StatsError> {
        let dim = match initial.first() {
            Some(first) if !first.is_empty() => first.len(),
            _ => return Err(StatsError::EmptyInput),
        };
        for c in &initial {
            if c.len() != dim {
                return Err(StatsError::DimensionMismatch { expected: dim, actual: c.len() });
            }
        }
        let counts = vec![0u64; initial.len()];
        Ok(StreamingKMeans { centroids: initial, counts, parallelism: Parallelism::Auto })
    }

    /// Sets the parallelism of the per-chunk assignment step. Never
    /// affects the folded centroids.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Folds a batch of row-major points into the stream.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] for rows of the wrong
    /// dimension. An empty batch is a no-op.
    pub fn fold(&mut self, points: &[Vec<f64>]) -> Result<(), StatsError> {
        if points.is_empty() {
            return Ok(());
        }
        let dim = self.centroids[0].len();
        for p in points {
            if p.len() != dim {
                return Err(StatsError::DimensionMismatch { expected: dim, actual: p.len() });
            }
        }
        let columns = ColMatrix::from_rows(points)?;
        self.fold_columns(&columns, self.parallelism)
    }

    /// Folds a column-major batch into the stream, chunk by chunk.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when the matrix has the
    /// wrong number of columns.
    pub fn fold_columns(
        &mut self,
        columns: &ColMatrix,
        par: Parallelism,
    ) -> Result<(), StatsError> {
        let dim = self.centroids[0].len();
        if columns.num_cols() != dim {
            return Err(StatsError::DimensionMismatch {
                expected: dim,
                actual: columns.num_cols(),
            });
        }
        let n = columns.num_rows();
        let mut start = 0;
        while start < n {
            let end = (start + UPDATE_CHUNK).min(n);
            let assigned = assign_block_range(columns, start, end, &self.centroids, par);
            for (offset, &(a, _)) in assigned.iter().enumerate() {
                let row = start + offset;
                self.counts[a] += 1;
                let lr = 1.0 / self.counts[a] as f64;
                for (d, c) in self.centroids[a].iter_mut().enumerate() {
                    *c += lr * (columns.col(d)[row] - *c);
                }
            }
            start = end;
        }
        Ok(())
    }

    /// The centroids as folded so far.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Consumes the stream, returning the folded centroids.
    pub fn into_centroids(self) -> Vec<Vec<f64>> {
        self.centroids
    }

    /// Points folded into each centroid.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total points folded in.
    pub fn observations(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Runs K-means for every `k` in `1..=k_max` and returns
/// `(k, mean within-cluster distance)` pairs — the paper's Fig. 3 sweep.
///
/// # Errors
///
/// Propagates [`KMeans::fit`] errors (e.g. fewer points than `k_max`).
pub fn elbow_curve(
    points: &[Vec<f64>],
    k_max: usize,
    seed: u64,
) -> Result<Vec<(usize, f64)>, StatsError> {
    elbow_curve_with(points, k_max, seed, Parallelism::Auto)
}

/// [`elbow_curve`] with an explicit [`Parallelism`] mode. The sweep values
/// are identical in every mode; each `k` runs its restarts under `par`.
pub fn elbow_curve_with(
    points: &[Vec<f64>],
    k_max: usize,
    seed: u64,
    par: Parallelism,
) -> Result<Vec<(usize, f64)>, StatsError> {
    (1..=k_max)
        .map(|k| {
            let config = KMeansConfig::new(k).with_seed(seed).with_parallelism(par);
            let result = KMeans::new(config).fit(points)?;
            Ok((k, result.mean_within_cluster_distance()))
        })
        .collect()
}

/// Picks the elbow of a sweep: the `k` after which the marginal improvement
/// drops below `flatness` times the first improvement. Falls back to the
/// largest improvement ratio when the curve never flattens.
pub fn pick_elbow(curve: &[(usize, f64)], flatness: f64) -> usize {
    if curve.len() < 3 {
        return curve.last().map_or(1, |&(k, _)| k);
    }
    let first_drop = (curve[0].1 - curve[1].1).max(1e-12);
    for w in curve.windows(2).skip(1) {
        let drop = w[0].1 - w[1].1;
        if drop < flatness * first_drop {
            return w[0].0;
        }
    }
    curve.last().expect("non-empty curve").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Deterministic, well-separated blobs.
        let mut points = Vec::new();
        let mut truth = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..20 {
                let dx = (i % 5) as f64 * 0.1;
                let dy = (i / 5) as f64 * 0.1;
                points.push(vec![cx + dx, cy + dy]);
                truth.push(label);
            }
        }
        (points, truth)
    }

    #[test]
    fn recovers_three_blobs() {
        let (points, truth) = three_blobs();
        let result = KMeans::new(KMeansConfig::new(3).with_seed(1)).fit(&points).unwrap();
        assert_eq!(result.k(), 3);
        let sizes = result.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        assert!(sizes.iter().all(|&s| s == 20), "sizes {sizes:?}");
        // Points sharing a truth label share a cluster.
        for i in 0..points.len() {
            for j in 0..points.len() {
                if truth[i] == truth[j] {
                    assert_eq!(result.assignments()[i], result.assignments()[j]);
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (points, _) = three_blobs();
        let a = KMeans::new(KMeansConfig::new(3).with_seed(9)).fit(&points).unwrap();
        let b = KMeans::new(KMeansConfig::new(3).with_seed(9)).fit(&points).unwrap();
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.inertia(), b.inertia());
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let points = vec![vec![0.0, 0.0], vec![2.0, 2.0], vec![4.0, 4.0]];
        let result = KMeans::new(KMeansConfig::new(1).with_seed(2)).fit(&points).unwrap();
        assert!((result.centroids()[0][0] - 2.0).abs() < 1e-9);
        assert!((result.centroids()[0][1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let points = vec![vec![0.0], vec![5.0], vec![9.0]];
        let result = KMeans::new(KMeansConfig::new(3).with_seed(3)).fit(&points).unwrap();
        assert!(result.inertia() < 1e-18);
        assert_eq!(result.mean_within_cluster_distance(), 0.0);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(KMeans::new(KMeansConfig::new(2)).fit(&[]).is_err());
        assert!(KMeans::new(KMeansConfig::new(5)).fit(&[vec![1.0], vec![2.0]]).is_err());
        assert!(KMeans::new(KMeansConfig::new(1)).fit(&[vec![1.0, 2.0], vec![1.0]]).is_err());
    }

    #[test]
    fn elbow_curve_is_monotone_decreasing() {
        let (points, _) = three_blobs();
        let curve = elbow_curve(&points, 6, 1).unwrap();
        assert_eq!(curve.len(), 6);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6, "curve must not rise: {curve:?}");
        }
    }

    #[test]
    fn elbow_at_three_for_three_blobs() {
        let (points, _) = three_blobs();
        let curve = elbow_curve(&points, 8, 1).unwrap();
        assert_eq!(pick_elbow(&curve, 0.05), 3, "curve: {curve:?}");
    }

    #[test]
    fn pick_elbow_degenerate_curves() {
        assert_eq!(pick_elbow(&[], 0.1), 1);
        assert_eq!(pick_elbow(&[(1, 5.0)], 0.1), 1);
        assert_eq!(pick_elbow(&[(1, 5.0), (2, 4.0)], 0.1), 2);
    }

    #[test]
    fn medoids_are_members_of_their_cluster() {
        let (points, _) = three_blobs();
        let result = KMeans::new(KMeansConfig::new(3).with_seed(4)).fit(&points).unwrap();
        let medoids = result.medoids(&points).unwrap();
        assert_eq!(medoids.len(), 3);
        for (cluster, m) in medoids.iter().enumerate() {
            let m = m.expect("non-empty cluster has a medoid");
            assert_eq!(result.assignments()[m], cluster);
        }
    }

    #[test]
    fn blocked_assignment_matches_scalar_nearest_centroid_bitwise() {
        // > ASSIGN_BLOCK points with deliberate near-ties so the winner
        // fold is exercised, across sequential and threaded runs.
        let points: Vec<Vec<f64>> = (0..700)
            .map(|i| {
                let x = ((i * 37) % 101) as f64 / 101.0;
                let y = ((i * 61) % 89) as f64 / 89.0;
                vec![x, y, (x - y).abs()]
            })
            .collect();
        // The duplicated centroid forces exact distance ties; the blocked
        // fold must keep the lower index, as the scalar scan does.
        let centroids = vec![vec![0.2, 0.2, 0.1], vec![0.8, 0.5, 0.3], vec![0.2, 0.2, 0.1]];
        let columns = ColMatrix::from_rows(&points).unwrap();
        for par in [Parallelism::Sequential, Parallelism::Auto, Parallelism::Threads(4)] {
            let blocked = assign_blocks(&columns, &centroids, par);
            for (p, &(a, d2)) in points.iter().zip(&blocked) {
                let (sa, sd2) = nearest_centroid(p, &centroids).unwrap();
                assert_eq!(a, sa, "{par:?}");
                assert_eq!(d2.to_bits(), sd2.to_bits(), "{par:?}");
            }
        }
    }

    #[test]
    fn refine_recovers_blobs_from_perturbed_centroids() {
        let (points, truth) = three_blobs();
        // Perturbed versions of the true centers: the warm start must pull
        // them back onto the blobs without any RNG.
        let initial = vec![vec![1.0, 1.5], vec![8.5, 1.0], vec![1.5, 9.0]];
        let result = KMeans::new(KMeansConfig::new(3)).refine(&points, &initial).unwrap();
        let sizes = result.cluster_sizes();
        assert!(sizes.iter().all(|&s| s == 20), "sizes {sizes:?}");
        for i in 0..points.len() {
            for j in 0..points.len() {
                if truth[i] == truth[j] {
                    assert_eq!(result.assignments()[i], result.assignments()[j]);
                }
            }
        }
        // Warm refinement reaches the same optimum as the cold fit.
        let cold = KMeans::new(KMeansConfig::new(3).with_seed(1)).fit(&points).unwrap();
        assert!((result.inertia() - cold.inertia()).abs() < 1e-9);
    }

    #[test]
    fn refine_is_bit_identical_across_parallelism_modes() {
        let (points, _) = three_blobs();
        let initial = vec![vec![0.5, 0.5], vec![9.0, 1.0], vec![1.0, 9.0]];
        let reference = KMeans::new(KMeansConfig::new(3).with_parallelism(Parallelism::Sequential))
            .refine(&points, &initial)
            .unwrap();
        for par in [Parallelism::Auto, Parallelism::Threads(4)] {
            let run = KMeans::new(KMeansConfig::new(3).with_parallelism(par))
                .refine(&points, &initial)
                .unwrap();
            assert_eq!(run.assignments(), reference.assignments(), "{par:?}");
            assert_eq!(run.inertia().to_bits(), reference.inertia().to_bits(), "{par:?}");
            for (a, b) in run.centroids().iter().zip(reference.centroids()) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{par:?}");
                }
            }
        }
    }

    #[test]
    fn refine_rejects_invalid_input() {
        let (points, _) = three_blobs();
        let kmeans = KMeans::new(KMeansConfig::new(3));
        assert!(kmeans.refine(&[], &[vec![0.0, 0.0]]).is_err());
        assert!(kmeans.refine(&points, &[]).is_err());
        assert!(kmeans.refine(&points, &[vec![0.0]]).is_err());
        assert!(kmeans
            .refine(&points[..2], &[vec![0.0; 2], vec![1.0; 2], vec![2.0; 2]])
            .is_err());
    }

    #[test]
    fn streaming_fold_is_a_running_mean_for_one_centroid() {
        let mut stream = StreamingKMeans::new(vec![vec![0.0, 0.0]]).unwrap();
        let points: Vec<Vec<f64>> =
            (0..1500).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        stream.fold(&points).unwrap();
        assert_eq!(stream.observations(), 1500);
        // With a single centroid the mini-batch rule degenerates to the
        // exact running mean of the stream.
        let mean_x = points.iter().map(|p| p[0]).sum::<f64>() / points.len() as f64;
        assert!((stream.centroids()[0][0] - mean_x).abs() < 1e-6);
    }

    #[test]
    fn streaming_fold_matches_across_parallelism_and_batch_splits() {
        // > UPDATE_CHUNK points so the chunk loop runs more than once; the
        // folded centroids must not depend on the thread count or on how
        // the stream was cut into fold() calls.
        let points: Vec<Vec<f64>> = (0..1300)
            .map(|i| {
                let x = ((i * 37) % 101) as f64 / 101.0;
                let y = ((i * 61) % 89) as f64 / 89.0;
                vec![x, y]
            })
            .collect();
        let initial = vec![vec![0.2, 0.2], vec![0.8, 0.8]];
        let mut whole = StreamingKMeans::new(initial.clone())
            .unwrap()
            .with_parallelism(Parallelism::Sequential);
        whole.fold(&points).unwrap();
        for par in [Parallelism::Auto, Parallelism::Threads(4)] {
            let mut run = StreamingKMeans::new(initial.clone()).unwrap().with_parallelism(par);
            run.fold(&points).unwrap();
            assert_eq!(run.counts(), whole.counts(), "{par:?}");
            for (a, b) in run.centroids().iter().zip(whole.centroids()) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{par:?}");
                }
            }
        }
        // Chunk boundaries are fixed per fold() call, so splitting the
        // stream at a chunk multiple reproduces the whole-stream fold.
        let mut split = StreamingKMeans::new(initial).unwrap();
        split.fold(&points[..512]).unwrap();
        split.fold(&points[512..1024]).unwrap();
        split.fold(&points[1024..]).unwrap();
        assert_eq!(split.counts(), whole.counts());
        for (a, b) in split.centroids().iter().zip(whole.centroids()) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn streaming_rejects_invalid_input() {
        assert!(StreamingKMeans::new(vec![]).is_err());
        assert!(StreamingKMeans::new(vec![vec![]]).is_err());
        assert!(StreamingKMeans::new(vec![vec![0.0, 1.0], vec![0.0]]).is_err());
        let mut stream = StreamingKMeans::new(vec![vec![0.0, 0.0]]).unwrap();
        assert!(stream.fold(&[vec![1.0]]).is_err());
        stream.fold(&[]).unwrap();
        assert_eq!(stream.observations(), 0);
    }

    #[test]
    fn duplicate_points_do_not_crash_init() {
        let points = vec![vec![1.0, 1.0]; 10];
        let result = KMeans::new(KMeansConfig::new(3).with_seed(5)).fit(&points).unwrap();
        assert_eq!(result.assignments().len(), 10);
        assert!(result.inertia() < 1e-18);
    }
}
