//! K-means clustering with k-means++ seeding, Lloyd iterations and
//! multi-restart selection.
//!
//! The paper clusters the 433 failure records for k = 1..10 and picks the
//! elbow of the mean distance from records to their centroids (Fig. 3).
//! [`KMeansResult::mean_within_cluster_distance`] is that statistic, and
//! [`elbow_curve`] reproduces the sweep.

use dds_stats::par::{par_chunks_reduce, par_generate, par_map_indexed, stream_seed, Parallelism};
use dds_stats::{euclidean, squared_euclidean, StatsError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fixed accumulation chunk for the centroid-update reduction. A constant
/// (never derived from the thread count) so floating-point sums associate
/// identically in sequential and parallel runs.
const UPDATE_CHUNK: usize = 512;

/// Configuration for a [`KMeans`] run.
///
/// # Example
///
/// ```
/// use dds_cluster::KMeansConfig;
///
/// let config = KMeansConfig::new(3).with_seed(7).with_restarts(5);
/// assert_eq!(config.k, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iterations: usize,
    /// Number of independent k-means++ restarts; the lowest-inertia run
    /// wins.
    pub restarts: usize,
    /// Convergence threshold on centroid movement (squared distance).
    pub tolerance: f64,
    /// RNG seed for seeding and restarts.
    pub seed: u64,
    /// Parallelism across restarts and, within a restart, across points.
    /// Never affects the fitted result: every restart draws from its own
    /// seed-derived stream and reductions run in fixed chunk order.
    pub parallelism: Parallelism,
}

impl KMeansConfig {
    /// Creates a configuration with `k` clusters and sensible defaults
    /// (100 iterations, 8 restarts, 1e-9 tolerance).
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iterations: 100,
            restarts: 8,
            tolerance: 1e-9,
            seed: 0xC1A5,
            parallelism: Parallelism::Auto,
        }
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the parallelism mode.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the number of restarts.
    #[must_use]
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Sets the iteration cap.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }
}

/// The K-means algorithm (Lloyd's, k-means++ init).
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KMeansConfig,
}

impl KMeans {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: KMeansConfig) -> Self {
        KMeans { config }
    }

    /// Clusters `points` (rows of equal dimension).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for no points,
    /// [`StatsError::DimensionMismatch`] for ragged rows, and
    /// [`StatsError::InsufficientData`] when there are fewer points than
    /// clusters.
    pub fn fit(&self, points: &[Vec<f64>]) -> Result<KMeansResult, StatsError> {
        if points.is_empty() || points[0].is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let dim = points[0].len();
        for p in points {
            if p.len() != dim {
                return Err(StatsError::DimensionMismatch { expected: dim, actual: p.len() });
            }
        }
        if points.len() < self.config.k {
            return Err(StatsError::InsufficientData { needed: self.config.k, got: points.len() });
        }
        if self.config.k == 0 {
            return Err(StatsError::InvalidParameter("k must be positive".to_string()));
        }
        // Every restart draws from its own seed-derived stream, so restarts
        // can run in any order — or concurrently — and reproduce the
        // sequential result exactly. When restarts run in parallel, each
        // restart's inner loops stay sequential (no nested thread fan-out);
        // with a single restart the inner loops get the whole budget.
        let _span = dds_obs::span!(
            dds_obs::Level::Debug,
            "kmeans.fit",
            k = self.config.k,
            points = points.len(),
            restarts = self.config.restarts,
        );
        let metrics = dds_obs::metrics::global();
        metrics.counter("dds_kmeans_fits_total").inc();
        metrics.counter("dds_kmeans_restarts_total").add(self.config.restarts as u64);
        let restarts = self.config.restarts;
        let inner = if restarts > 1 { Parallelism::Sequential } else { self.config.parallelism };
        let runs = par_generate(self.config.parallelism, restarts, |r| {
            // On parallel worker threads this event has no parent span —
            // span nesting is per-thread by design.
            dds_obs::event!(dds_obs::Level::Trace, "kmeans.restart", restart = r);
            let mut rng = StdRng::seed_from_u64(stream_seed(self.config.seed, r as u64));
            self.fit_once(points, &mut rng, inner)
        });
        // Lowest inertia wins; ties break to the lowest restart index
        // (the order a sequential scan would keep).
        let mut best: Option<KMeansResult> = None;
        for run in runs {
            let result = run?;
            if best.as_ref().is_none_or(|b| result.inertia() < b.inertia()) {
                best = Some(result);
            }
        }
        let best = best.expect("at least one restart");
        dds_obs::event!(dds_obs::Level::Trace, "kmeans.converged", inertia = best.inertia());
        Ok(best)
    }

    fn fit_once(
        &self,
        points: &[Vec<f64>],
        rng: &mut StdRng,
        par: Parallelism,
    ) -> Result<KMeansResult, StatsError> {
        let k = self.config.k;
        let dim = points[0].len();
        let mut centroids = plus_plus_init(points, k, rng)?;
        let mut assignments = vec![0usize; points.len()];
        for _ in 0..self.config.max_iterations {
            // Assignment step: each point independently finds its nearest
            // centroid.
            let assigned = par_map_indexed(par, points, |_, p| nearest_centroid(p, &centroids));
            for (slot, a) in assignments.iter_mut().zip(assigned) {
                *slot = a?.0;
            }
            // Update step: accumulate per-cluster sums over fixed-size
            // chunks, merged in chunk order so the floating-point result is
            // identical for every thread count.
            let (mut new_centroids, counts) = par_chunks_reduce(
                par,
                points,
                UPDATE_CHUNK,
                || (vec![vec![0.0; dim]; k], vec![0usize; k]),
                |(mut sums, mut counts), base, chunk| {
                    for (offset, p) in chunk.iter().enumerate() {
                        let a = assignments[base + offset];
                        counts[a] += 1;
                        for (c, v) in sums[a].iter_mut().zip(p) {
                            *c += v;
                        }
                    }
                    (sums, counts)
                },
                |(mut sums, mut counts), (other_sums, other_counts)| {
                    for (sum, other) in sums.iter_mut().zip(other_sums) {
                        for (c, v) in sum.iter_mut().zip(other) {
                            *c += v;
                        }
                    }
                    for (count, other) in counts.iter_mut().zip(other_counts) {
                        *count += other;
                    }
                    (sums, counts)
                },
            );
            for (centroid, count) in new_centroids.iter_mut().zip(&counts) {
                if *count == 0 {
                    // Re-seed an empty cluster at the point farthest from
                    // its centroid.
                    let far = farthest_point(points, &centroids)?;
                    centroid.clone_from(&points[far]);
                } else {
                    for v in centroid.iter_mut() {
                        *v /= *count as f64;
                    }
                }
            }
            // Convergence check.
            let moved: f64 = centroids
                .iter()
                .zip(&new_centroids)
                .map(|(a, b)| squared_euclidean(a, b))
                .sum::<Result<f64, _>>()?;
            centroids = new_centroids;
            if moved < self.config.tolerance {
                break;
            }
        }
        // Final assignment + statistics; the scalar sums accumulate in
        // point order regardless of how the distances were computed.
        let mut inertia = 0.0;
        let mut distance_sum = 0.0;
        let finals = par_map_indexed(par, points, |_, p| nearest_centroid(p, &centroids));
        for (slot, f) in assignments.iter_mut().zip(finals) {
            let (a, d2) = f?;
            *slot = a;
            inertia += d2;
            distance_sum += d2.sqrt();
        }
        Ok(KMeansResult {
            centroids,
            assignments,
            inertia,
            mean_within_cluster_distance: distance_sum / points.len() as f64,
        })
    }
}

fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> Result<(usize, f64), StatsError> {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d2 = squared_euclidean(point, c)?;
        if d2 < best.1 {
            best = (i, d2);
        }
    }
    Ok(best)
}

fn farthest_point(points: &[Vec<f64>], centroids: &[Vec<f64>]) -> Result<usize, StatsError> {
    let mut best = (0usize, -1.0);
    for (i, p) in points.iter().enumerate() {
        let (_, d2) = nearest_centroid(p, centroids)?;
        if d2 > best.1 {
            best = (i, d2);
        }
    }
    Ok(best.0)
}

/// k-means++ initialization: first centroid uniform, then proportional to
/// squared distance from the nearest chosen centroid.
fn plus_plus_init(
    points: &[Vec<f64>],
    k: usize,
    rng: &mut StdRng,
) -> Result<Vec<Vec<f64>>, StatsError> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    while centroids.len() < k {
        let mut weights = Vec::with_capacity(points.len());
        let mut total = 0.0;
        for p in points {
            let (_, d2) = nearest_centroid(p, &centroids)?;
            weights.push(d2);
            total += d2;
        }
        let idx = if total <= 0.0 {
            // All points coincide with existing centroids: pick uniformly.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in weights.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[idx].clone());
    }
    Ok(centroids)
}

/// Outcome of a K-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    centroids: Vec<Vec<f64>>,
    assignments: Vec<usize>,
    inertia: f64,
    mean_within_cluster_distance: f64,
}

impl KMeansResult {
    /// Final centroids (k rows).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Cluster index per input point.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Sum of squared distances to assigned centroids.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Mean Euclidean distance from points to their centroid — the y-axis
    /// of the paper's Fig. 3 elbow plot.
    pub fn mean_within_cluster_distance(&self) -> f64 {
        self.mean_within_cluster_distance
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Sizes of each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Index of the point closest to each centroid (the paper's "centroid
    /// failure" representative drives of Fig. 5); `None` for clusters that
    /// ended up empty (possible when many points coincide).
    ///
    /// # Errors
    ///
    /// Propagates distance shape errors if `points` differ in dimension
    /// from the fit.
    pub fn medoids(&self, points: &[Vec<f64>]) -> Result<Vec<Option<usize>>, StatsError> {
        let mut best: Vec<(Option<usize>, f64)> = vec![(None, f64::INFINITY); self.k()];
        for (i, p) in points.iter().enumerate() {
            let a = self.assignments[i];
            let d = euclidean(p, &self.centroids[a])?;
            if d < best[a].1 {
                best[a] = (Some(i), d);
            }
        }
        Ok(best.into_iter().map(|(i, _)| i).collect())
    }
}

/// Runs K-means for every `k` in `1..=k_max` and returns
/// `(k, mean within-cluster distance)` pairs — the paper's Fig. 3 sweep.
///
/// # Errors
///
/// Propagates [`KMeans::fit`] errors (e.g. fewer points than `k_max`).
pub fn elbow_curve(
    points: &[Vec<f64>],
    k_max: usize,
    seed: u64,
) -> Result<Vec<(usize, f64)>, StatsError> {
    elbow_curve_with(points, k_max, seed, Parallelism::Auto)
}

/// [`elbow_curve`] with an explicit [`Parallelism`] mode. The sweep values
/// are identical in every mode; each `k` runs its restarts under `par`.
pub fn elbow_curve_with(
    points: &[Vec<f64>],
    k_max: usize,
    seed: u64,
    par: Parallelism,
) -> Result<Vec<(usize, f64)>, StatsError> {
    (1..=k_max)
        .map(|k| {
            let config = KMeansConfig::new(k).with_seed(seed).with_parallelism(par);
            let result = KMeans::new(config).fit(points)?;
            Ok((k, result.mean_within_cluster_distance()))
        })
        .collect()
}

/// Picks the elbow of a sweep: the `k` after which the marginal improvement
/// drops below `flatness` times the first improvement. Falls back to the
/// largest improvement ratio when the curve never flattens.
pub fn pick_elbow(curve: &[(usize, f64)], flatness: f64) -> usize {
    if curve.len() < 3 {
        return curve.last().map_or(1, |&(k, _)| k);
    }
    let first_drop = (curve[0].1 - curve[1].1).max(1e-12);
    for w in curve.windows(2).skip(1) {
        let drop = w[0].1 - w[1].1;
        if drop < flatness * first_drop {
            return w[0].0;
        }
    }
    curve.last().expect("non-empty curve").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Deterministic, well-separated blobs.
        let mut points = Vec::new();
        let mut truth = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..20 {
                let dx = (i % 5) as f64 * 0.1;
                let dy = (i / 5) as f64 * 0.1;
                points.push(vec![cx + dx, cy + dy]);
                truth.push(label);
            }
        }
        (points, truth)
    }

    #[test]
    fn recovers_three_blobs() {
        let (points, truth) = three_blobs();
        let result = KMeans::new(KMeansConfig::new(3).with_seed(1)).fit(&points).unwrap();
        assert_eq!(result.k(), 3);
        let sizes = result.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        assert!(sizes.iter().all(|&s| s == 20), "sizes {sizes:?}");
        // Points sharing a truth label share a cluster.
        for i in 0..points.len() {
            for j in 0..points.len() {
                if truth[i] == truth[j] {
                    assert_eq!(result.assignments()[i], result.assignments()[j]);
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (points, _) = three_blobs();
        let a = KMeans::new(KMeansConfig::new(3).with_seed(9)).fit(&points).unwrap();
        let b = KMeans::new(KMeansConfig::new(3).with_seed(9)).fit(&points).unwrap();
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.inertia(), b.inertia());
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let points = vec![vec![0.0, 0.0], vec![2.0, 2.0], vec![4.0, 4.0]];
        let result = KMeans::new(KMeansConfig::new(1).with_seed(2)).fit(&points).unwrap();
        assert!((result.centroids()[0][0] - 2.0).abs() < 1e-9);
        assert!((result.centroids()[0][1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let points = vec![vec![0.0], vec![5.0], vec![9.0]];
        let result = KMeans::new(KMeansConfig::new(3).with_seed(3)).fit(&points).unwrap();
        assert!(result.inertia() < 1e-18);
        assert_eq!(result.mean_within_cluster_distance(), 0.0);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(KMeans::new(KMeansConfig::new(2)).fit(&[]).is_err());
        assert!(KMeans::new(KMeansConfig::new(5)).fit(&[vec![1.0], vec![2.0]]).is_err());
        assert!(KMeans::new(KMeansConfig::new(1)).fit(&[vec![1.0, 2.0], vec![1.0]]).is_err());
    }

    #[test]
    fn elbow_curve_is_monotone_decreasing() {
        let (points, _) = three_blobs();
        let curve = elbow_curve(&points, 6, 1).unwrap();
        assert_eq!(curve.len(), 6);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6, "curve must not rise: {curve:?}");
        }
    }

    #[test]
    fn elbow_at_three_for_three_blobs() {
        let (points, _) = three_blobs();
        let curve = elbow_curve(&points, 8, 1).unwrap();
        assert_eq!(pick_elbow(&curve, 0.05), 3, "curve: {curve:?}");
    }

    #[test]
    fn pick_elbow_degenerate_curves() {
        assert_eq!(pick_elbow(&[], 0.1), 1);
        assert_eq!(pick_elbow(&[(1, 5.0)], 0.1), 1);
        assert_eq!(pick_elbow(&[(1, 5.0), (2, 4.0)], 0.1), 2);
    }

    #[test]
    fn medoids_are_members_of_their_cluster() {
        let (points, _) = three_blobs();
        let result = KMeans::new(KMeansConfig::new(3).with_seed(4)).fit(&points).unwrap();
        let medoids = result.medoids(&points).unwrap();
        assert_eq!(medoids.len(), 3);
        for (cluster, m) in medoids.iter().enumerate() {
            let m = m.expect("non-empty cluster has a medoid");
            assert_eq!(result.assignments()[m], cluster);
        }
    }

    #[test]
    fn duplicate_points_do_not_crash_init() {
        let points = vec![vec![1.0, 1.0]; 10];
        let result = KMeans::new(KMeansConfig::new(3).with_seed(5)).fit(&points).unwrap();
        assert_eq!(result.assignments().len(), 10);
        assert!(result.inertia() < 1e-18);
    }
}
