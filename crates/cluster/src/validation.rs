//! Cluster validation: silhouette score and adjusted Rand index.
//!
//! The paper could only sanity-check its failure groups qualitatively
//! (Figs. 4–6) because real drives come without ground-truth failure types.
//! The simulated fleet *has* ground truth, so the workspace uses the
//! adjusted Rand index to quantify how faithfully the unsupervised
//! categorization recovers the underlying failure modes, and the silhouette
//! score as a label-free quality measure.

use dds_stats::{euclidean, StatsError};

/// Mean silhouette score of a labeled clustering, in `[-1, 1]`.
///
/// For each point: `s = (b − a) / max(a, b)` with `a` the mean distance to
/// its own cluster and `b` the smallest mean distance to another cluster.
/// Singleton clusters contribute `0`, and a clustering with a single
/// cluster scores `0` by convention.
///
/// # Errors
///
/// Returns [`StatsError::DimensionMismatch`] when `points` and `labels`
/// lengths differ and [`StatsError::EmptyInput`] for no points.
///
/// # Example
///
/// ```
/// use dds_cluster::silhouette_score;
///
/// let points = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let labels = vec![0, 0, 1, 1];
/// let s = silhouette_score(&points, &labels).unwrap();
/// assert!(s > 0.9);
/// ```
pub fn silhouette_score(points: &[Vec<f64>], labels: &[usize]) -> Result<f64, StatsError> {
    if points.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if points.len() != labels.len() {
        return Err(StatsError::DimensionMismatch { expected: points.len(), actual: labels.len() });
    }
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    if k < 2 {
        return Ok(0.0);
    }
    let mut total = 0.0;
    for (i, p) in points.iter().enumerate() {
        // Mean distance to every cluster.
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            sums[labels[j]] += euclidean(p, q)?;
            counts[labels[j]] += 1;
        }
        let own = labels[i];
        if counts[own] == 0 {
            // Singleton cluster: silhouette defined as 0.
            continue;
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b).max(1e-300);
        }
    }
    Ok(total / points.len() as f64)
}

/// Adjusted Rand index between two labelings, `1.0` for identical
/// partitions (up to renaming), `≈ 0` for independent ones.
///
/// # Errors
///
/// Returns [`StatsError::DimensionMismatch`] for unequal lengths and
/// [`StatsError::EmptyInput`] for empty labelings.
///
/// # Example
///
/// ```
/// use dds_cluster::adjusted_rand_index;
///
/// let truth = [0, 0, 1, 1, 2, 2];
/// let found = [2, 2, 0, 0, 1, 1]; // same partition, renamed
/// assert!((adjusted_rand_index(&truth, &found).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> Result<f64, StatsError> {
    if a.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if a.len() != b.len() {
        return Err(StatsError::DimensionMismatch { expected: a.len(), actual: b.len() });
    }
    let ka = a.iter().copied().max().expect("non-empty") + 1;
    let kb = b.iter().copied().max().expect("non-empty") + 1;
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let choose2 = |n: u64| -> f64 { (n as f64) * (n as f64 - 1.0) / 2.0 };
    let sum_cells: f64 = table.iter().flatten().map(|&n| choose2(n)).sum();
    let row_sums: Vec<u64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<u64> = (0..kb).map(|c| table.iter().map(|r| r[c]).sum()).collect();
    let sum_rows: f64 = row_sums.iter().map(|&n| choose2(n)).sum();
    let sum_cols: f64 = col_sums.iter().map(|&n| choose2(n)).sum();
    let total = choose2(a.len() as u64);
    if total == 0.0 {
        return Ok(1.0);
    }
    let expected = sum_rows * sum_cols / total;
    let max_index = (sum_rows + sum_cols) / 2.0;
    if (max_index - expected).abs() < 1e-300 {
        // Both partitions are trivial (all-one-cluster or all-singletons in
        // the same way); they agree perfectly.
        return Ok(1.0);
    }
    Ok((sum_cells - expected) / (max_index - expected))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silhouette_separated_vs_interleaved() {
        let points = vec![vec![0.0], vec![0.2], vec![9.0], vec![9.2]];
        let good = silhouette_score(&points, &[0, 0, 1, 1]).unwrap();
        let bad = silhouette_score(&points, &[0, 1, 0, 1]).unwrap();
        assert!(good > 0.9);
        assert!(bad < 0.0);
    }

    #[test]
    fn silhouette_single_cluster_is_zero() {
        let points = vec![vec![0.0], vec![1.0]];
        assert_eq!(silhouette_score(&points, &[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn silhouette_handles_singletons() {
        let points = vec![vec![0.0], vec![0.1], vec![50.0]];
        let s = silhouette_score(&points, &[0, 0, 1]).unwrap();
        assert!(s > 0.5); // two tight points + one singleton (contributes 0)
    }

    #[test]
    fn silhouette_shape_errors() {
        assert!(silhouette_score(&[], &[]).is_err());
        assert!(silhouette_score(&[vec![1.0]], &[0, 1]).is_err());
    }

    #[test]
    fn ari_identical_and_renamed() {
        let a = [0, 0, 1, 1, 2];
        assert!((adjusted_rand_index(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        let renamed = [1, 1, 2, 2, 0];
        assert!((adjusted_rand_index(&a, &renamed).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_disagreement_is_low() {
        let truth = [0, 0, 0, 1, 1, 1];
        let noise = [0, 1, 0, 1, 0, 1];
        let ari = adjusted_rand_index(&truth, &noise).unwrap();
        assert!(ari < 0.2, "ari {ari}");
    }

    #[test]
    fn ari_partial_agreement_between_zero_and_one() {
        let truth = [0, 0, 0, 0, 1, 1, 1, 1];
        let found = [0, 0, 0, 1, 1, 1, 1, 1];
        let ari = adjusted_rand_index(&truth, &found).unwrap();
        assert!(ari > 0.3 && ari < 1.0, "ari {ari}");
    }

    #[test]
    fn ari_trivial_partitions() {
        let ones = [0usize; 5];
        assert_eq!(adjusted_rand_index(&ones, &ones).unwrap(), 1.0);
        let singletons = [0, 1, 2, 3, 4];
        assert_eq!(adjusted_rand_index(&singletons, &singletons).unwrap(), 1.0);
    }

    #[test]
    fn ari_shape_errors() {
        assert!(adjusted_rand_index(&[], &[]).is_err());
        assert!(adjusted_rand_index(&[0], &[0, 1]).is_err());
    }
}
