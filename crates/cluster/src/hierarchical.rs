//! Agglomerative hierarchical clustering with the standard linkage
//! criteria.
//!
//! A third clustering method beside K-means and SVC: §IV-B's claim that
//! different algorithms "generate the same results" on the failure records
//! is worth checking with a method from a different family. Average-link
//! agglomeration over Euclidean distances, cut at a requested cluster
//! count, is the classic choice.

use dds_stats::{euclidean, StatsError};

/// Linkage criterion: how the distance between two clusters is derived
/// from point distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Minimum pairwise distance (can chain).
    Single,
    /// Maximum pairwise distance (compact clusters).
    Complete,
    /// Mean pairwise distance (the usual default).
    Average,
}

/// One merge step of the dendrogram: the two cluster ids merged (ids ≥ n
/// refer to earlier merges, Lance–Williams style) and the linkage distance
/// at which they merged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged cluster id.
    pub left: usize,
    /// Second merged cluster id.
    pub right: usize,
    /// Linkage distance of the merge.
    pub distance: f64,
    /// Size of the resulting cluster.
    pub size: usize,
}

/// A fitted dendrogram over `n` points.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Builds the dendrogram by greedy agglomeration (O(n³), adequate for
    /// the 433 failure records of §IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for no points and
    /// [`StatsError::DimensionMismatch`] for ragged rows.
    pub fn fit(points: &[Vec<f64>], linkage: Linkage) -> Result<Self, StatsError> {
        let n = points.len();
        if n == 0 || points[0].is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let dim = points[0].len();
        for p in points {
            if p.len() != dim {
                return Err(StatsError::DimensionMismatch { expected: dim, actual: p.len() });
            }
        }
        // Active clusters: (id, member indices).
        let mut clusters: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
        // Pairwise point distances, computed once.
        let mut point_dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = euclidean(&points[i], &points[j])?;
                point_dist[i][j] = d;
                point_dist[j][i] = d;
            }
        }
        let point_dist = &point_dist;
        let cluster_distance = |a: &[usize], b: &[usize]| -> f64 {
            let values = a.iter().flat_map(|&i| b.iter().map(move |&j| point_dist[i][j]));
            match linkage {
                Linkage::Single => values.fold(f64::INFINITY, f64::min),
                Linkage::Complete => values.fold(0.0, f64::max),
                Linkage::Average => values.sum::<f64>() / (a.len() * b.len()) as f64,
            }
        };
        let mut merges = Vec::with_capacity(n.saturating_sub(1));
        let mut next_id = n;
        while clusters.len() > 1 {
            // Find the closest pair.
            let mut best = (0usize, 1usize, f64::INFINITY);
            for i in 0..clusters.len() {
                for j in (i + 1)..clusters.len() {
                    let d = cluster_distance(&clusters[i].1, &clusters[j].1);
                    if d < best.2 {
                        best = (i, j, d);
                    }
                }
            }
            let (i, j, distance) = best;
            let (right_id, right_members) = clusters.swap_remove(j);
            let (left_id, mut members) = clusters.swap_remove(if i == clusters.len() {
                // swap_remove(j) may have moved index i.
                j
            } else {
                i
            });
            members.extend(right_members);
            merges.push(Merge { left: left_id, right: right_id, distance, size: members.len() });
            clusters.push((next_id, members));
            next_id += 1;
        }
        Ok(Dendrogram { n, merges })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dendrogram is over zero points (never after `fit`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge sequence, in agglomeration order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram into `k` clusters, returning dense labels.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `k` is 0 or exceeds
    /// the point count.
    pub fn cut(&self, k: usize) -> Result<Vec<usize>, StatsError> {
        if k == 0 || k > self.n {
            return Err(StatsError::InvalidParameter(format!(
                "cannot cut {} points into {k} clusters",
                self.n
            )));
        }
        // Replay merges until k clusters remain; union-find over ids.
        let total_ids = self.n + self.merges.len();
        let mut parent: Vec<usize> = (0..total_ids).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let merges_to_apply = self.n - k;
        for (step, merge) in self.merges.iter().take(merges_to_apply).enumerate() {
            let new_id = self.n + step;
            let l = find(&mut parent, merge.left);
            let r = find(&mut parent, merge.right);
            parent[l] = new_id;
            parent[r] = new_id;
        }
        // Dense labels per point.
        let mut labels = vec![usize::MAX; self.n];
        let mut roots: Vec<usize> = Vec::new();
        for (i, slot) in labels.iter_mut().enumerate() {
            let root = find(&mut parent, i);
            let label = match roots.iter().position(|&r| r == root) {
                Some(pos) => pos,
                None => {
                    roots.push(root);
                    roots.len() - 1
                }
            };
            *slot = label;
        }
        Ok(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validation::adjusted_rand_index;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut points = Vec::new();
        let mut truth = Vec::new();
        for (label, &(cx, cy)) in [(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)].iter().enumerate() {
            for i in 0..12 {
                points.push(vec![cx + (i % 4) as f64 * 0.1, cy + (i / 4) as f64 * 0.1]);
                truth.push(label);
            }
        }
        (points, truth)
    }

    #[test]
    fn recovers_blobs_with_every_linkage() {
        let (points, truth) = blobs();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dendrogram = Dendrogram::fit(&points, linkage).unwrap();
            let labels = dendrogram.cut(3).unwrap();
            let ari = adjusted_rand_index(&truth, &labels).unwrap();
            assert!((ari - 1.0).abs() < 1e-12, "{linkage:?}: ARI {ari}");
        }
    }

    #[test]
    fn merge_count_and_sizes() {
        let (points, _) = blobs();
        let dendrogram = Dendrogram::fit(&points, Linkage::Average).unwrap();
        assert_eq!(dendrogram.merges().len(), points.len() - 1);
        assert_eq!(dendrogram.merges().last().unwrap().size, points.len());
        assert_eq!(dendrogram.len(), points.len());
        assert!(!dendrogram.is_empty());
    }

    #[test]
    fn average_linkage_merge_distances_rise_between_blobs() {
        let (points, _) = blobs();
        let dendrogram = Dendrogram::fit(&points, Linkage::Average).unwrap();
        // The last two merges (joining the blobs) are much farther than the
        // first (within-blob) merge.
        let first = dendrogram.merges().first().unwrap().distance;
        let last = dendrogram.merges().last().unwrap().distance;
        assert!(last > 10.0 * first.max(1e-9));
    }

    #[test]
    fn cut_extremes() {
        let (points, _) = blobs();
        let dendrogram = Dendrogram::fit(&points, Linkage::Complete).unwrap();
        let all_one = dendrogram.cut(1).unwrap();
        assert!(all_one.iter().all(|&l| l == 0));
        let singletons = dendrogram.cut(points.len()).unwrap();
        let mut sorted = singletons.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), points.len());
    }

    #[test]
    fn cut_validation() {
        let (points, _) = blobs();
        let dendrogram = Dendrogram::fit(&points, Linkage::Average).unwrap();
        assert!(dendrogram.cut(0).is_err());
        assert!(dendrogram.cut(points.len() + 1).is_err());
    }

    #[test]
    fn fit_validation() {
        assert!(Dendrogram::fit(&[], Linkage::Average).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(Dendrogram::fit(&ragged, Linkage::Average).is_err());
    }

    #[test]
    fn single_point_dendrogram() {
        let dendrogram = Dendrogram::fit(&[vec![1.0, 2.0]], Linkage::Single).unwrap();
        assert!(dendrogram.merges().is_empty());
        assert_eq!(dendrogram.cut(1).unwrap(), vec![0]);
    }

    #[test]
    fn single_linkage_chains_where_complete_does_not() {
        // A chain of points: single-link keeps it together at k=2 against a
        // far outlier; complete-link may split the chain.
        let mut points: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 * 1.0]).collect();
        points.push(vec![100.0]);
        let single = Dendrogram::fit(&points, Linkage::Single).unwrap().cut(2).unwrap();
        // The chain is one cluster, the outlier its own.
        assert!(single[..8].windows(2).all(|w| w[0] == w[1]));
        assert_ne!(single[0], single[8]);
    }
}
