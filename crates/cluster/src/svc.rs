//! Support vector clustering (Ben-Hur, Horn, Siegelmann & Vapnik, 2001).
//!
//! §IV-B of the paper clusters the failure records with both K-means and
//! SVC and reports that the two "generate the same results". SVC maps the
//! data into an RBF feature space, finds the minimal enclosing sphere of
//! the images (a quadratic program solved here with SMO-style pairwise
//! coordinate descent), and labels clusters as the connected components of
//! the graph in which two points are adjacent when the whole line segment
//! between them stays inside the sphere's pre-image contour.

use dds_stats::{squared_euclidean, StatsError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`Svc`].
///
/// # Example
///
/// ```
/// use dds_cluster::SvcConfig;
///
/// let config = SvcConfig::new().with_gamma(0.5).with_soft_margin(1.0);
/// assert_eq!(config.gamma, Some(0.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SvcConfig {
    /// RBF kernel width `K(a, b) = exp(−gamma · ‖a − b‖²)`. `None` picks
    /// `1 / median pairwise squared distance` from the data.
    pub gamma: Option<f64>,
    /// Upper bound `C` on the dual coefficients; `C ≥ 1` forbids bounded
    /// support vectors (no outliers), smaller values allow them.
    pub soft_margin: f64,
    /// Number of interpolation samples per segment in the labeling step.
    pub segment_samples: usize,
    /// Maximum SMO sweeps.
    pub max_sweeps: usize,
    /// Convergence threshold on the duality-style objective change.
    pub tolerance: f64,
    /// RNG seed (pair selection order).
    pub seed: u64,
}

impl SvcConfig {
    /// Defaults: data-driven gamma, hard margin (`C = 1`), 12 segment
    /// samples, 200 sweeps.
    pub fn new() -> Self {
        SvcConfig {
            gamma: None,
            soft_margin: 1.0,
            segment_samples: 12,
            max_sweeps: 200,
            tolerance: 1e-10,
            seed: 0x5FC,
        }
    }

    /// Sets an explicit RBF width.
    #[must_use]
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = Some(gamma);
        self
    }

    /// Sets the soft-margin bound `C`.
    #[must_use]
    pub fn with_soft_margin(mut self, c: f64) -> Self {
        self.soft_margin = c;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig::new()
    }
}

/// The support vector clustering algorithm.
#[derive(Debug, Clone)]
pub struct Svc {
    config: SvcConfig,
}

impl Svc {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: SvcConfig) -> Self {
        Svc { config }
    }

    /// Clusters `points`, returning per-point labels (0-based, dense).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for no points,
    /// [`StatsError::DimensionMismatch`] for ragged rows, and
    /// [`StatsError::InvalidParameter`] for a non-positive `gamma` or
    /// `soft_margin < 1/n` (which makes the QP infeasible).
    pub fn fit(&self, points: &[Vec<f64>]) -> Result<SvcResult, StatsError> {
        if points.is_empty() || points[0].is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let n = points.len();
        let dim = points[0].len();
        for p in points {
            if p.len() != dim {
                return Err(StatsError::DimensionMismatch { expected: dim, actual: p.len() });
            }
        }
        let c = self.config.soft_margin;
        if c <= 0.0 || c * (n as f64) < 1.0 {
            return Err(StatsError::InvalidParameter(format!(
                "soft margin C = {c} cannot satisfy the sum-to-one constraint for n = {n}"
            )));
        }
        let gamma = match self.config.gamma {
            Some(g) if g > 0.0 => g,
            Some(g) => {
                return Err(StatsError::InvalidParameter(format!(
                    "gamma must be positive, got {g}"
                )))
            }
            None => default_gamma(points)?,
        };

        // Kernel matrix (RBF: diagonal is 1).
        let mut kernel = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            kernel[i][i] = 1.0;
            for j in (i + 1)..n {
                let k = (-gamma * squared_euclidean(&points[i], &points[j])?).exp();
                kernel[i][j] = k;
                kernel[j][i] = k;
            }
        }

        // --- SMO-style pairwise descent on beta' K beta ------------------
        let mut beta = vec![1.0 / n as f64; n];
        // g[i] = (K beta)_i
        let mut g: Vec<f64> =
            (0..n).map(|i| kernel[i].iter().zip(&beta).map(|(k, b)| k * b).sum()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut objective: f64 = beta.iter().zip(&g).map(|(b, gi)| b * gi).sum();
        for _ in 0..self.config.max_sweeps {
            for i in 0..n {
                let j = rng.random_range(0..n);
                if i == j {
                    continue;
                }
                let denom = kernel[i][i] + kernel[j][j] - 2.0 * kernel[i][j];
                if denom <= 1e-15 {
                    continue;
                }
                let s = beta[i] + beta[j];
                let lo = (s - c).max(0.0);
                let hi = s.min(c).max(lo);
                let new_bi = (beta[i] + (g[j] - g[i]) / denom).clamp(lo, hi);
                let delta = new_bi - beta[i];
                if delta.abs() < 1e-15 {
                    continue;
                }
                // Guard against floating-point drift below zero / above C.
                beta[i] = new_bi.clamp(0.0, c);
                beta[j] = (s - new_bi).clamp(0.0, c);
                for k in 0..n {
                    g[k] += delta * (kernel[i][k] - kernel[j][k]);
                }
            }
            let new_objective: f64 = beta.iter().zip(&g).map(|(b, gi)| b * gi).sum();
            if (objective - new_objective).abs() < self.config.tolerance {
                objective = new_objective;
                break;
            }
            objective = new_objective;
        }

        // Sphere radius²: evaluated at margin support vectors
        // (0 < beta < C). R²(x) = 1 − 2 Σ β_i K(x_i, x) + β'Kβ.
        let quad = objective;
        let eps = 1e-7;
        let sv: Vec<usize> = (0..n).filter(|&i| beta[i] > eps).collect();
        let margin_sv: Vec<usize> = sv.iter().copied().filter(|&i| beta[i] < c - eps).collect();
        let radius_set = if margin_sv.is_empty() { &sv } else { &margin_sv };
        let radius2 =
            radius_set.iter().map(|&i| 1.0 - 2.0 * g[i] + quad).fold(0.0f64, f64::max).max(0.0);

        // --- cluster labeling via segment sampling + union-find ----------
        let r2 = |x: &[f64]| -> f64 {
            let mut k_sum = 0.0;
            for &i in &sv {
                let d2: f64 = x.iter().zip(&points[i]).map(|(a, b)| (a - b) * (a - b)).sum();
                k_sum += beta[i] * (-gamma * d2).exp();
            }
            1.0 - 2.0 * k_sum + quad
        };
        let tol = 1e-6 + radius2 * 1e-3;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let samples = self.config.segment_samples.max(2);
        let inside: Vec<bool> = (0..n).map(|i| 1.0 - 2.0 * g[i] + quad <= radius2 + tol).collect();
        for i in 0..n {
            if !inside[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !inside[j] {
                    continue;
                }
                if find(&mut parent, i) == find(&mut parent, j) {
                    continue;
                }
                let mut connected = true;
                for step in 1..samples {
                    let t = step as f64 / samples as f64;
                    let mid: Vec<f64> =
                        points[i].iter().zip(&points[j]).map(|(a, b)| a + t * (b - a)).collect();
                    if r2(&mid) > radius2 + tol {
                        connected = false;
                        break;
                    }
                }
                if connected {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri] = rj;
                }
            }
        }
        // Bounded SVs / outliers: attach to the nearest inside point's
        // component.
        for i in 0..n {
            if inside[i] {
                continue;
            }
            let mut best = (usize::MAX, f64::INFINITY);
            for j in 0..n {
                if !inside[j] {
                    continue;
                }
                let d = squared_euclidean(&points[i], &points[j])?;
                if d < best.1 {
                    best = (j, d);
                }
            }
            if best.0 != usize::MAX {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, best.0));
                parent[ri] = rj;
            }
        }
        // Dense labels.
        let mut labels = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut roots: Vec<(usize, usize)> = Vec::new();
        for (i, label_slot) in labels.iter_mut().enumerate() {
            let r = find(&mut parent, i);
            let label = match roots.iter().find(|&&(root, _)| root == r) {
                Some(&(_, l)) => l,
                None => {
                    roots.push((r, next));
                    next += 1;
                    next - 1
                }
            };
            *label_slot = label;
        }
        Ok(SvcResult { labels, num_clusters: next, gamma, radius2, support_vectors: sv })
    }
}

/// Data-driven default RBF width: the reciprocal of the median pairwise
/// squared distance (subsampled for large inputs).
///
/// SVC with this width often yields a single cluster on well-separated
/// data; the classic procedure *increases* gamma until cluster structure
/// appears (Ben-Hur et al. §4). [`suggest_gamma`] exposes the base value so
/// callers can run that sweep.
///
/// # Errors
///
/// Propagates distance shape errors.
pub fn suggest_gamma(points: &[Vec<f64>]) -> Result<f64, StatsError> {
    default_gamma(points)
}

fn default_gamma(points: &[Vec<f64>]) -> Result<f64, StatsError> {
    let n = points.len();
    if n == 1 {
        return Ok(1.0);
    }
    let stride = (n / 200).max(1);
    let mut d2: Vec<f64> = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i + stride;
        while j < n {
            d2.push(squared_euclidean(&points[i], &points[j])?);
            j += stride;
        }
        i += stride;
    }
    if d2.is_empty() {
        return Ok(1.0);
    }
    d2.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    let median = d2[d2.len() / 2];
    Ok(if median > 0.0 { 1.0 / median } else { 1.0 })
}

/// Outcome of an SVC run.
#[derive(Debug, Clone, PartialEq)]
pub struct SvcResult {
    labels: Vec<usize>,
    num_clusters: usize,
    gamma: f64,
    radius2: f64,
    support_vectors: Vec<usize>,
}

impl SvcResult {
    /// Dense cluster label per input point.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of clusters found.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// The RBF width actually used.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Squared radius of the minimal enclosing sphere in feature space.
    pub fn radius_squared(&self) -> f64 {
        self.radius2
    }

    /// Indices of the support vectors (non-zero dual coefficients).
    pub fn support_vectors(&self) -> &[usize] {
        &self.support_vectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], per: usize) -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for &(cx, cy) in centers {
            for i in 0..per {
                let dx = (i % 4) as f64 * 0.08;
                let dy = (i / 4) as f64 * 0.08;
                points.push(vec![cx + dx, cy + dy]);
            }
        }
        points
    }

    #[test]
    fn separates_two_blobs() {
        let points = blobs(&[(0.0, 0.0), (6.0, 6.0)], 12);
        let result = Svc::new(SvcConfig::new().with_gamma(1.5)).fit(&points).unwrap();
        assert_eq!(result.num_clusters(), 2, "labels: {:?}", result.labels());
        // Within-blob labels agree.
        for w in result.labels()[..12].windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_ne!(result.labels()[0], result.labels()[12]);
    }

    #[test]
    fn separates_three_blobs() {
        let points = blobs(&[(0.0, 0.0), (7.0, 0.0), (0.0, 7.0)], 10);
        let result = Svc::new(SvcConfig::new().with_gamma(1.5)).fit(&points).unwrap();
        assert_eq!(result.num_clusters(), 3);
    }

    #[test]
    fn tiny_gamma_merges_everything() {
        let points = blobs(&[(0.0, 0.0), (4.0, 4.0)], 8);
        let result = Svc::new(SvcConfig::new().with_gamma(1e-4)).fit(&points).unwrap();
        assert_eq!(result.num_clusters(), 1);
    }

    #[test]
    fn default_gamma_is_reasonable() {
        let points = blobs(&[(0.0, 0.0), (5.0, 5.0)], 10);
        let result = Svc::new(SvcConfig::new()).fit(&points).unwrap();
        assert!(result.gamma() > 0.0);
        assert!(result.num_clusters() >= 1);
    }

    #[test]
    fn labels_are_dense_and_cover_all_points() {
        let points = blobs(&[(0.0, 0.0), (8.0, 0.0)], 9);
        let result = Svc::new(SvcConfig::new().with_gamma(2.0)).fit(&points).unwrap();
        let max = *result.labels().iter().max().unwrap();
        assert_eq!(max + 1, result.num_clusters());
        assert_eq!(result.labels().len(), points.len());
    }

    #[test]
    fn deterministic_for_seed() {
        let points = blobs(&[(0.0, 0.0), (6.0, 6.0)], 10);
        let a = Svc::new(SvcConfig::new().with_seed(3)).fit(&points).unwrap();
        let b = Svc::new(SvcConfig::new().with_seed(3)).fit(&points).unwrap();
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(Svc::new(SvcConfig::new()).fit(&[]).is_err());
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(Svc::new(SvcConfig::new()).fit(&ragged).is_err());
        let points = blobs(&[(0.0, 0.0)], 5);
        assert!(Svc::new(SvcConfig::new().with_gamma(-1.0)).fit(&points).is_err());
        assert!(Svc::new(SvcConfig::new().with_soft_margin(0.01)).fit(&points).is_err());
    }

    #[test]
    fn single_point_is_one_cluster() {
        let result = Svc::new(SvcConfig::new()).fit(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(result.num_clusters(), 1);
        assert_eq!(result.labels(), &[0]);
    }

    #[test]
    fn support_vectors_are_reported() {
        let points = blobs(&[(0.0, 0.0), (6.0, 6.0)], 10);
        let result = Svc::new(SvcConfig::new().with_gamma(1.0)).fit(&points).unwrap();
        assert!(!result.support_vectors().is_empty());
        assert!(result.radius_squared() >= 0.0);
    }
}
