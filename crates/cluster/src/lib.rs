//! Clustering substrate: K-means, support vector clustering (SVC),
//! principal component analysis and cluster-validation indices.
//!
//! §IV-B of the paper clusters the 433 thirty-feature failure records with
//! *both* K-means and Support Vector Clustering ("which generate the same
//! results"), picks the number of clusters from the elbow of the mean
//! within-cluster distance (Fig. 3), and visualizes the groups in the first
//! two principal components (Fig. 4). All three algorithms are implemented
//! here from scratch on top of [`dds_stats`], plus the validation indices
//! (silhouette, adjusted Rand index) used to check the unsupervised result
//! against the simulator's ground truth.
//!
//! # Example
//!
//! ```
//! use dds_cluster::{KMeans, KMeansConfig};
//!
//! let points = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
//!     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
//! ];
//! let result = KMeans::new(KMeansConfig::new(2).with_seed(1)).fit(&points).unwrap();
//! assert_eq!(result.assignments()[0], result.assignments()[1]);
//! assert_ne!(result.assignments()[0], result.assignments()[3]);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod hierarchical;
pub mod kmeans;
pub mod pca;
pub mod svc;
pub mod validation;

pub use hierarchical::{Dendrogram, Linkage};
pub use kmeans::{KMeans, KMeansConfig, KMeansResult, StreamingKMeans};
pub use pca::PcaModel;
pub use svc::{Svc, SvcConfig, SvcResult};
pub use validation::{adjusted_rand_index, silhouette_score};
