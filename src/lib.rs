//! # dds — Disk Degradation Signatures
//!
//! A full Rust reproduction of *"Characterizing Disk Failures with
//! Quantified Disk Degradation Signatures: An Early Experience"*
//! (Huang, Fu, Zhang, Shi — IISWC 2015): categorize disk failures from
//! SMART telemetry, derive per-category degradation signatures, quantify
//! attribute influence, and predict degradation — plus every substrate the
//! paper depends on (a SMART fleet simulator standing in for the
//! proprietary dataset, statistics, clustering, and regression trees).
//!
//! This façade crate re-exports the workspace:
//!
//! * [`stats`] — statistics & linear algebra ([`dds_stats`])
//! * [`obs`] — zero-dependency observability: tracing, metrics, stage
//!   profiling ([`dds_obs`])
//! * [`smartsim`] — the SMART fleet simulator ([`dds_smartsim`])
//! * [`cluster`] — K-means / SVC / PCA ([`dds_cluster`])
//! * [`regtree`] — CART regression trees ([`dds_regtree`])
//! * [`core`] — the paper's analysis pipeline ([`dds_core`])
//! * [`chaos`] — deterministic SMART-telemetry fault injection
//!   ([`dds_chaos`])
//! * [`monitor`] — online monitoring middleware ([`dds_monitor`], the §VI
//!   future-work system)
//!
//! # Quickstart
//!
//! ```
//! use dds::prelude::*;
//!
//! // Simulate a small fleet and run the complete analysis of the paper.
//! let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(1)).run();
//! let analysis = Analysis::new(AnalysisConfig::default()).run(&dataset).unwrap();
//! assert_eq!(analysis.categorization.num_groups(), 3);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use dds_chaos as chaos;
pub use dds_cluster as cluster;
pub use dds_core as core;
pub use dds_monitor as monitor;
pub use dds_obs as obs;
pub use dds_regtree as regtree;
pub use dds_smartsim as smartsim;
pub use dds_stats as stats;

/// Convenient glob-import surface covering the common entry points.
pub mod prelude {
    pub use dds_core::{Analysis, AnalysisConfig, ModelError, TrainedModel, TrainingContext};
    pub use dds_monitor::{FleetMonitor, ModelBundle, MonitorConfig};
    pub use dds_smartsim::{
        Attribute, Dataset, DriveLabel, DriveProfile, FailureMode, FleetConfig, FleetSimulator,
        HealthRecord,
    };
    pub use dds_stats::{SignatureForm, SignatureModel};
}
