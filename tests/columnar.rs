//! Property tests of the columnar (SoA) hot-path rewrite: the column store
//! is a lossless transpose of the record-major [`Dataset`], and every
//! rewritten kernel — degradation windows, temporal z-scores, regression
//! trees, the trained predictors — is *bit-identical* to its scalar
//! (AoS) predecessor on seeded random fleets.

use dds::prelude::*;
use dds_core::categorize::{Categorization, CategorizationConfig, Categorizer};
use dds_core::columnar::FleetColumns;
use dds_core::degradation::DegradationAnalyzer;
use dds_core::features::FailureRecordSet;
use dds_core::predict::DegradationPredictor;
use dds_core::zscore::{
    all_attribute_z_scores_columns, all_attribute_z_scores_with, temporal_z_scores,
    temporal_z_scores_columns, ZScoreConfig,
};
use dds_regtree::{RegressionTree, TreeConfig};
use dds_smartsim::NUM_ATTRIBUTES;
use dds_stats::{ColMatrix, Parallelism};

const SEEDS: [u64; 3] = [11, 4242, 987_654_321];

fn fleet(seed: u64) -> Dataset {
    FleetSimulator::new(FleetConfig::test_scale().with_seed(seed)).run()
}

fn categorize(dataset: &Dataset) -> (FailureRecordSet, Categorization) {
    let records = FailureRecordSet::extract(dataset, 24).expect("failure records");
    let cat = Categorizer::new(CategorizationConfig { run_svc: false, ..Default::default() })
        .categorize(dataset, &records)
        .expect("categorization");
    (records, cat)
}

#[test]
fn column_store_round_trips_every_record() {
    for seed in SEEDS {
        let dataset = fleet(seed);
        let columns = FleetColumns::build(&dataset, Parallelism::Sequential);
        assert_eq!(columns.num_drives(), dataset.drives().len());
        assert_eq!(columns.num_rows(), dataset.num_records());
        for (pos, drive) in dataset.drives().iter().enumerate() {
            // column -> record: rebuilt records equal the originals (hour
            // and all 12 raw values; f64 equality is exact because the
            // transpose only moves bits).
            assert_eq!(columns.rebuild_records(pos), drive.records(), "seed {seed} drive {pos}");
            // record -> column: normalized columns equal the Eq. (1)
            // normalization of each record, bit for bit.
            for (i, record) in drive.records().iter().enumerate() {
                let normalized = dataset.normalize_record(record);
                for (a, expected) in normalized.iter().enumerate() {
                    assert_eq!(
                        columns.normalized_slice(a, pos)[i].to_bits(),
                        expected.to_bits(),
                        "seed {seed} drive {pos} record {i} attr {a}"
                    );
                }
            }
        }
        // And the round trip survives a second transpose: rebuilding a
        // dataset-shaped row matrix from columns and re-transposing it
        // yields the same columns.
        let rows: Vec<Vec<f64>> = (0..columns.num_drives())
            .flat_map(|pos| columns.rebuild_records(pos).into_iter().map(|r| r.values.to_vec()))
            .collect();
        let matrix = ColMatrix::from_rows(&rows).expect("transpose");
        for a in 0..NUM_ATTRIBUTES {
            assert_eq!(matrix.col(a), columns.raw_col(a), "seed {seed} attr {a}");
        }
    }
}

#[test]
fn degradation_kernel_is_bit_identical_across_layouts() {
    for seed in SEEDS {
        let dataset = fleet(seed);
        let columns = FleetColumns::build(&dataset, Parallelism::Sequential);
        let analyzer = DegradationAnalyzer::default();
        for drive in dataset.failed_drives() {
            let aos = analyzer.analyze_drive(&dataset, drive).expect("aos");
            let pos = columns.position(drive.id()).expect("drive in columns");
            let soa = analyzer.analyze_drive_columns(&columns, pos).expect("soa");
            assert_eq!(aos.drive_id, soa.drive_id);
            assert_eq!(aos.window_hours, soa.window_hours, "seed {seed} {:?}", drive.id());
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&aos.distances), bits(&soa.distances));
            assert_eq!(bits(&aos.times), bits(&soa.times));
            assert_eq!(bits(&aos.degradation), bits(&soa.degradation));
            assert_eq!(aos.best_model, soa.best_model);
            assert_eq!(aos.best_rmse.to_bits(), soa.best_rmse.to_bits());
            assert_eq!(aos.model_rmse.len(), soa.model_rmse.len());
            for ((fa, ra), (fb, rb)) in aos.model_rmse.iter().zip(&soa.model_rmse) {
                assert_eq!(fa, fb);
                assert_eq!(ra.to_bits(), rb.to_bits());
            }
        }
    }
}

#[test]
fn group_degradation_is_bit_identical_across_layouts() {
    for seed in SEEDS {
        let dataset = fleet(seed);
        let (records, cat) = categorize(&dataset);
        let columns = FleetColumns::build(&dataset, Parallelism::Sequential);
        let analyzer = DegradationAnalyzer::default();
        let aos = analyzer.analyze_groups(&dataset, &records, &cat).expect("aos groups");
        let soa = analyzer.analyze_groups_columns(&columns, &records, &cat).expect("soa groups");
        assert_eq!(aos.len(), soa.len());
        for (a, b) in aos.iter().zip(&soa) {
            assert_eq!(a.group_index, b.group_index);
            assert_eq!(a.windows, b.windows, "seed {seed} group {}", a.group_index);
            assert_eq!(a.dominant_form, b.dominant_form);
            assert_eq!(a.form_votes, b.form_votes);
            assert_eq!(a.window_stats.0, b.window_stats.0);
            assert_eq!(a.window_stats.1.to_bits(), b.window_stats.1.to_bits());
            assert_eq!(a.window_stats.2, b.window_stats.2);
            for ((fa, ra), (fb, rb)) in a.mean_rmse_by_form.iter().zip(&b.mean_rmse_by_form) {
                assert_eq!(fa, fb);
                assert_eq!(ra.to_bits(), rb.to_bits());
            }
            assert_eq!(a.centroid.drive_id, b.centroid.drive_id);
            assert_eq!(a.centroid.best_rmse.to_bits(), b.centroid.best_rmse.to_bits());
        }
    }
}

#[test]
fn zscore_kernel_is_bit_identical_across_layouts() {
    for seed in SEEDS {
        let dataset = fleet(seed);
        let (records, cat) = categorize(&dataset);
        let columns = FleetColumns::build(&dataset, Parallelism::Sequential);
        let config = ZScoreConfig::default();
        for &attr in &[Attribute::TemperatureCelsius, Attribute::PowerOnHours] {
            let aos = temporal_z_scores(&dataset, &records, &cat, attr, &config).expect("aos");
            let soa =
                temporal_z_scores_columns(&columns, &records, &cat, attr, &config).expect("soa");
            assert_eq!(aos.times, soa.times);
            assert_eq!(aos.by_group.len(), soa.by_group.len());
            for (ga, gb) in aos.by_group.iter().zip(&soa.by_group) {
                let bits =
                    |s: &[Option<f64>]| s.iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>();
                assert_eq!(bits(ga), bits(gb), "seed {seed} {attr:?}");
            }
        }
        // The full sweep agrees too, in every parallelism mode.
        let aos =
            all_attribute_z_scores_with(&dataset, &records, &cat, &config, Parallelism::Sequential)
                .expect("aos sweep");
        for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let soa = all_attribute_z_scores_columns(&columns, &records, &cat, &config, par)
                .expect("soa sweep");
            assert_eq!(aos.len(), soa.len());
            for (a, b) in aos.iter().zip(&soa) {
                assert_eq!(a.attribute, b.attribute);
                for (ga, gb) in a.by_group.iter().zip(&b.by_group) {
                    let bits = |s: &[Option<f64>]| {
                        s.iter().map(|v| v.map(f64::to_bits)).collect::<Vec<_>>()
                    };
                    assert_eq!(bits(ga), bits(gb));
                }
            }
        }
    }
}

#[test]
fn trained_predictors_are_bit_identical_across_layouts() {
    for seed in SEEDS {
        let dataset = fleet(seed);
        let (records, cat) = categorize(&dataset);
        let columns = FleetColumns::build(&dataset, Parallelism::Sequential);
        let degradation = DegradationAnalyzer::default()
            .analyze_groups(&dataset, &records, &cat)
            .expect("degradation");
        let predictor = DegradationPredictor::default();
        let aos = predictor.train(&dataset, &cat, &degradation).expect("aos train");
        let soa = predictor.train_with_columns(&columns, &cat, &degradation).expect("soa train");
        assert_eq!(aos.groups.len(), soa.groups.len());
        for (a, b) in aos.groups.iter().zip(&soa.groups) {
            assert_eq!(a.group_index, b.group_index);
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.tree, b.tree, "seed {seed} group {} trees differ", a.group_index);
            assert_eq!(a.rmse.to_bits(), b.rmse.to_bits());
            assert_eq!(a.error_rate.to_bits(), b.error_rate.to_bits());
            assert_eq!(a.train_samples, b.train_samples);
            assert_eq!(a.test_samples, b.test_samples);
        }
    }
}

#[test]
fn regression_tree_fit_is_bit_identical_on_fleet_samples() {
    // fit vs fit_columns on real fleet-derived matrices (the in-crate
    // regtree tests cover synthetic tie-heavy fixtures; this covers the
    // actual sample distribution the pipeline trains on).
    for seed in SEEDS {
        let dataset = fleet(seed);
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for drive in dataset.failed_drives() {
            let last = drive.records().last().expect("non-empty").hour;
            for record in drive.records() {
                xs.push(dataset.normalize_record(record).to_vec());
                ys.push(-((last - record.hour) as f64) / 480.0);
            }
        }
        let matrix = ColMatrix::from_rows(&xs).expect("matrix");
        for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let config = TreeConfig::default().with_parallelism(par);
            let aos = RegressionTree::fit(&xs, &ys, &config).expect("fit");
            let soa = RegressionTree::fit_columns(&matrix, &ys, &config).expect("fit_columns");
            assert_eq!(aos, soa, "seed {seed} {par:?}");
        }
    }
}
