//! Integration tests of sharded serving: shard-count invariance of the
//! aggregated output, backpressure shed accounting over real HTTP, and
//! graceful degradation (shed-budget `/healthz` flip and recovery) with
//! the chaos specs running against the sharded path under overload.
//!
//! Like `tests/serve.rs`, every test takes `SERVE_LOCK` first: the serve
//! loop writes the process-global metrics registry.

use dds_cli::serve::{serve, ServeOptions};
use dds_cli::ChaosOptions;
use dds_monitor::wire::encode_batch;
use dds_smartsim::{DriveId, FleetConfig, FleetSimulator, HealthRecord};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static SERVE_LOCK: Mutex<()> = Mutex::new(());

fn serve_lock() -> MutexGuard<'static, ()> {
    SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_options() -> ServeOptions {
    ServeOptions {
        scale: "test".to_string(),
        seed: 77,
        threads: 1,
        listen: "127.0.0.1:0".to_string(),
        epochs: 0,
        tick_ms: 1,
        ..ServeOptions::default()
    }
}

fn raw_roundtrip(mut stream: TcpStream, request: &[u8]) -> (u16, String) {
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(request).expect("send request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    let status: u16 = reply
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {reply:?}"));
    let body = reply.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    raw_roundtrip(stream, format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
}

/// Like [`http_get`] but keeps the response headers, for asserting what
/// actually crosses the wire (Content-Type and friends).
fn http_get_full(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    let status: u16 = reply
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {reply:?}"));
    let (headers, body) = reply.split_once("\r\n\r\n").unwrap_or((reply.as_str(), ""));
    (status, headers.to_string(), body.to_string())
}

fn http_post(addr: SocketAddr, path: &str, body: &[u8]) -> (u16, String) {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    let mut request =
        format!("POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n", body.len())
            .into_bytes();
    request.extend_from_slice(body);
    raw_roundtrip(stream, &request)
}

fn poll_until(
    addr: SocketAddr,
    path: &str,
    timeout: Duration,
    pred: impl Fn(u16, &str) -> bool,
) -> (u16, String) {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, body) = http_get(addr, path);
        if pred(status, &body) {
            return (status, body);
        }
        assert!(Instant::now() < deadline, "timed out polling {path}; last: {status} {body}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Runs the serve loop on a background thread, hands its bound address to
/// `body`, then stops the loop and returns its summary output.
fn with_serve_loop(options: ServeOptions, body: impl FnOnce(SocketAddr)) -> String {
    let stop = AtomicBool::new(false);
    let (addr_tx, addr_rx) = mpsc::channel();
    let mut summary = None;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            serve(&options, &stop, None, move |addr| addr_tx.send(addr).unwrap())
                .expect("serve loop")
        });
        let body_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let addr = addr_rx.recv_timeout(Duration::from_secs(10)).expect("server bound");
            body(addr);
        }));
        stop.store(true, Ordering::SeqCst);
        let serve_result = handle.join().expect("serve thread");
        if let Err(panic) = body_result {
            std::panic::resume_unwind(panic);
        }
        summary = Some(serve_result);
    });
    summary.expect("serve summary")
}

/// Runs a bounded serve loop to completion and returns its summary with
/// the ephemeral address and the shard count masked (the run-to-run and
/// config-to-config variation the invariance test must ignore).
fn masked_summary(options: &ServeOptions) -> String {
    let stop = AtomicBool::new(false);
    let addr_cell = std::cell::Cell::new(None);
    let summary =
        serve(options, &stop, None, |addr| addr_cell.set(Some(addr))).expect("bounded serve run");
    let addr = addr_cell.get().expect("server bound");
    summary
        .replace(&addr.to_string(), "ADDR")
        .replace(&format!("over {} shards", options.shards), "over S shards")
}

/// A benign external batch: one never-before-seen drive carrying a real
/// healthy drive's record (ascending-hour, in-range values), so the
/// quality gate accepts it and no alert fires — the tests below exercise
/// queue accounting and shedding, not the sanitizer.
fn external_batch(index: u32, records_per_batch: usize) -> Vec<(DriveId, HealthRecord)> {
    static DONOR: Mutex<Option<Vec<HealthRecord>>> = Mutex::new(None);
    let mut donor = DONOR.lock().unwrap_or_else(|e| e.into_inner());
    let records = donor.get_or_insert_with(|| {
        let fleet = FleetSimulator::new(FleetConfig::test_scale().with_seed(4242)).run();
        let drive = fleet.drives().iter().find(|d| !d.label().is_failed()).expect("a good drive");
        drive.records().to_vec()
    });
    (0..records_per_batch)
        .map(|i| {
            let record = records[i % records.len()].clone();
            (DriveId(1_000_000 + index * records_per_batch as u32 + i as u32), record)
        })
        .collect()
}

#[test]
fn serve_output_is_invariant_across_shard_counts() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    // Two epochs, no pacing: the whole run is deterministic, so the
    // summary (alerts emitted, drives latched, quality tallies, final
    // health) must be byte-identical at any shard count once the listen
    // address and the shard count itself are masked.
    let base = ServeOptions { epochs: 2, tick_ms: 0, ..test_options() };
    let one = masked_summary(&base);
    assert!(one.contains("2 epochs"), "bounded run completed: {one}");
    for shards in [2usize, 4] {
        dds_obs::metrics::global().reset();
        let sharded = masked_summary(&ServeOptions { shards, ..base.clone() });
        assert_eq!(one, sharded, "{shards} shards must reproduce the single-shard output");
    }
}

#[test]
fn shards_endpoint_partitions_the_fleet_and_ingest_receipts_conserve_counts() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    let options = ServeOptions { shards: 3, ingest_queue: 1, ..test_options() };
    let summary = with_serve_loop(options, |addr| {
        poll_until(addr, "/readyz", Duration::from_secs(60), |s, _| s == 200);

        // /shards reports one document covering all three shards.
        let (_, shards_doc) = poll_until(addr, "/shards", Duration::from_secs(60), |s, _| s == 200);
        dds_obs::json::validate(&shards_doc).expect("shards JSON");
        assert!(shards_doc.contains("\"shards\": 3"), "{shards_doc}");
        assert!(shards_doc.matches("\"shard\":").count() == 3, "{shards_doc}");

        // Offer batches much faster than the capacity-1 queue drains
        // (one drain per fleet-hour): every receipt is either queued
        // (200) or shed whole (429), and the receipts must reconcile
        // exactly with the conservation counters on /metrics.
        let mut accepted = 0u64;
        let mut shed = 0u64;
        for index in 0..30 {
            let batch = external_batch(index, 40);
            let (status, receipt) = http_post(addr, "/ingest", &encode_batch(&batch));
            match status {
                200 => {
                    assert!(receipt.contains("\"queued\""), "{receipt}");
                    accepted += 40;
                }
                429 => {
                    assert!(receipt.contains("\"shed\""), "{receipt}");
                    shed += 40;
                }
                other => panic!("unexpected /ingest status {other}: {receipt}"),
            }
        }
        assert!(accepted > 0, "at least the first batch fits the queue");
        assert!(shed > 0, "a capacity-1 queue under a 30-batch burst must shed");

        let metric = |body: &str, name: &str| -> u64 {
            body.lines()
                .find_map(|l| l.strip_prefix(&format!("{name} ")))
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| panic!("{name} missing from /metrics")) as u64
        };
        let (_, metrics) = http_get(addr, "/metrics");
        assert_eq!(metric(&metrics, "dds_ingest_records_total"), accepted);
        assert_eq!(metric(&metrics, "dds_shed_records_total"), shed);
        assert_eq!(
            metric(&metrics, "dds_ingest_records_total")
                + metric(&metrics, "dds_shed_records_total"),
            accepted + shed,
            "offered = accepted + shed"
        );
        assert_eq!(metric(&metrics, "dds_ingest_shards"), 3);

        // A malformed batch is rejected without touching the counters.
        let (status, receipt) = http_post(addr, "/ingest", b"DDSB\x09garbage");
        assert_eq!(status, 400, "{receipt}");
        let (_, after) = http_get(addr, "/metrics");
        assert_eq!(metric(&after, "dds_shed_records_total"), shed);
    });

    assert!(summary.contains("over 3 shards"), "summary reports the shard count: {summary}");
    let external: Vec<&str> =
        summary.lines().filter(|l| l.starts_with("external ingest:")).collect();
    assert_eq!(external.len(), 1, "summary reports external ingest: {summary}");
    assert!(
        external[0].contains("shed") && !external[0].contains(" 0 shed"),
        "summary reports the shed records: {summary}"
    );
}

#[test]
fn trace_spans_reconcile_with_ingest_receipts_over_http() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    let options = ServeOptions { shards: 2, ingest_queue: 1, ..test_options() };
    with_serve_loop(options, |addr| {
        poll_until(addr, "/readyz", Duration::from_secs(60), |s, _| s == 200);
        poll_until(addr, "/trace?n=1", Duration::from_secs(60), |s, b| s == 200 && !b.is_empty());

        // The satellite content-type audit, over the real socket: what
        // the service claims must be what curl actually receives.
        for (path, expected) in [
            ("/metrics", "text/plain; version=0.0.4"),
            ("/metrics.json", "application/json"),
            ("/alerts?n=5", "application/json"),
            ("/timeseries", "application/json"),
            ("/trace?n=8", "application/x-ndjson"),
            ("/healthz", "application/json"),
        ] {
            let (status, headers, _) = http_get_full(addr, path);
            assert_eq!(status, 200, "{path}");
            assert!(
                headers.contains(&format!("Content-Type: {expected}")),
                "{path} must declare {expected}; got headers: {headers}"
            );
        }

        // /timeseries covers both shards once sampling has started.
        let (_, body) = poll_until(addr, "/timeseries", Duration::from_secs(60), |s, b| {
            s == 200 && b.matches("\"shard\":").count() == 2
        });
        dds_obs::json::validate(&body).expect("timeseries JSON");

        // Burst a capacity-1 queue: every receipt is queued (200) or shed
        // (429), and each must eventually be visible as exactly one
        // flight-recorder span tagged source = "external".
        let mut queued = 0usize;
        let mut shed = 0usize;
        for index in 0..30 {
            let batch = external_batch(20_000 + index, 40);
            let (status, receipt) = http_post(addr, "/ingest", &encode_batch(&batch));
            match status {
                200 => queued += 1,
                429 => shed += 1,
                other => panic!("unexpected /ingest status {other}: {receipt}"),
            }
        }
        assert!(queued > 0, "at least the first batch fits the queue");
        assert!(shed > 0, "a capacity-1 queue under a 30-batch burst must shed");

        // Accumulate external spans (by their unique batch id) across
        // polls: the ring also carries the streaming epochs' spans, so a
        // single read could miss late drains. Every span must conserve
        // its records and attribute them to real shards.
        let mut seen: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, body) = http_get(addr, "/trace?n=512");
            assert_eq!(status, 200);
            for line in body.lines() {
                let span = dds_obs::json::parse(line).expect("span JSON-line");
                if span.get("source").and_then(|v| v.as_str()) != Some("external") {
                    continue;
                }
                let id = span.get("batch").and_then(|v| v.as_u64()).expect("batch id");
                let records = span.get("records").and_then(|v| v.as_u64()).expect("records");
                let accepted = span.get("accepted").and_then(|v| v.as_u64()).expect("accepted");
                let quarantined =
                    span.get("quarantined").and_then(|v| v.as_u64()).expect("quarantined");
                let outcome =
                    span.get("outcome").and_then(|v| v.as_str()).expect("outcome").to_string();
                let shards = span.get("shards").and_then(|v| v.as_array()).expect("shards");
                assert_eq!(records, 40, "external batches carry 40 records");
                match outcome.as_str() {
                    "ingested" => {
                        assert_eq!(accepted + quarantined, records, "span conserves its batch");
                        let attributed: u64 = shards
                            .iter()
                            .map(|s| s.get("records").and_then(|v| v.as_u64()).unwrap_or(0))
                            .sum();
                        assert_eq!(attributed, records, "shard spans partition the batch");
                        for shard in shards {
                            let index =
                                shard.get("shard").and_then(|v| v.as_u64()).expect("shard index");
                            assert!(index < 2, "shard attribution stays in range: {index}");
                        }
                    }
                    "shed" => {
                        assert!(shards.is_empty(), "shed batches never reach a shard");
                        assert_eq!(accepted, 0, "nothing from a shed batch is accepted");
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
                seen.insert(id, outcome);
            }
            let ingested_seen = seen.values().filter(|o| *o == "ingested").count();
            let shed_seen = seen.values().filter(|o| *o == "shed").count();
            if ingested_seen == queued && shed_seen == shed {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "trace/receipt ledgers never reconciled: {queued} queued vs {ingested_seen} \
                 ingested spans, {shed} shed receipts vs {shed_seen} shed spans"
            );
            std::thread::sleep(Duration::from_millis(25));
        }

        // ?n is honored and garbage is rejected over the wire too.
        let (_, two_lines) = http_get(addr, "/trace?n=2");
        assert_eq!(two_lines.lines().count(), 2, "/trace?n=2 returns exactly two spans");
        let (bad, _) = http_get(addr, "/trace?n=banana");
        assert_eq!(bad, 400);
    });
}

#[test]
fn malformed_ingest_bodies_never_produce_a_5xx() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    let options = ServeOptions { shards: 2, ..test_options() };
    with_serve_loop(options, |addr| {
        poll_until(addr, "/readyz", Duration::from_secs(60), |s, _| s == 200);

        // Start from one known-good batch, then derive adversarial bodies
        // from it: truncations at every interesting boundary, flipped
        // magic/version bytes, a poisoned declared count (the classic
        // capacity-bomb), trailing garbage, and plain fuzz noise from a
        // seeded LCG. Every one of them is untrusted network input and
        // must come back as a 4xx receipt — never a 5xx, never a panic.
        let good = encode_batch(&external_batch(90_000, 8));

        // Readiness polling legitimately answers 503 before the first
        // model publishes, so the zero-5xx gate is on the *delta* across
        // the fuzzing window, not the process-lifetime counter.
        let five_xx = |metrics: &str| -> f64 {
            metrics
                .lines()
                .find_map(|l| l.strip_prefix("dds_http_responses_5xx_total "))
                .and_then(|v| v.parse::<f64>().ok())
                .expect("5xx counter exported")
        };
        let (_, before) = http_get(addr, "/metrics");
        let five_xx_before = five_xx(&before);

        // An empty body is a valid (if useless) CSV chunk — blank lines
        // are skipped by contract — so it is a benign zero-record queue,
        // not an error.
        let (status, receipt) = http_post(addr, "/ingest", b"");
        assert_eq!(status, 200, "empty chunk is a no-op: {receipt}");
        assert!(receipt.contains("\"records\": 0"), "{receipt}");

        let mut bodies: Vec<Vec<u8>> = vec![
            b"DDS".to_vec(),
            b"DDSB".to_vec(),
            b"DDSB\x01".to_vec(),
            b"DDSB\x09garbage".to_vec(),
            b"drive,hour,temp\n1,2,3\n".to_vec(),
            vec![0xFF; 64],
        ];
        // Truncate the valid batch at the header edge, mid-count, at the
        // first record boundary, and one byte short of completeness.
        for cut in [5, 7, 9, 10, good.len() / 2, good.len() - 1] {
            bodies.push(good[..cut].to_vec());
        }
        // Oversized trailing garbage after a valid batch.
        let mut padded = good.clone();
        padded.extend_from_slice(&[0xAB; 13]);
        bodies.push(padded);
        // Corrupt the magic, the version, and the declared count.
        for (offset, value) in [(0usize, b'X'), (4, 0x7F)] {
            let mut bad = good.clone();
            bad[offset] = value;
            bodies.push(bad);
        }
        let mut bomb = good.clone();
        bomb[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        bodies.push(bomb);
        let mut undercount = good.clone();
        undercount[5..9].copy_from_slice(&2u32.to_le_bytes());
        bodies.push(undercount);
        // Seeded LCG noise in assorted lengths, some with a real prefix.
        let mut state = 0x2545F491_4F6CDD1Du64;
        for round in 0..24 {
            let len = 1 + (round * 37) % 300;
            let mut body = Vec::with_capacity(len + 9);
            if round % 3 == 0 {
                body.extend_from_slice(&good[..9.min(good.len())]);
            }
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                body.push((state >> 56) as u8);
            }
            bodies.push(body);
        }

        for (i, body) in bodies.iter().enumerate() {
            let (status, receipt) = http_post(addr, "/ingest", body);
            assert!(
                (400..500).contains(&status),
                "malformed body #{i} ({} bytes) must be a 4xx receipt, got {status}: {receipt}",
                body.len()
            );
        }
        // The intact batch still works after the abuse.
        let (status, receipt) = http_post(addr, "/ingest", &good);
        assert!(status == 200 || status == 429, "valid batch after fuzzing: {status} {receipt}");

        let (_, metrics) = http_get(addr, "/metrics");
        assert_eq!(
            five_xx(&metrics),
            five_xx_before,
            "malformed ingest must never 5xx:\n{metrics}"
        );
    });
}

#[test]
fn overload_flips_healthz_on_the_shed_budget_and_recovery_follows() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    // The PR 4 chaos spec from the serve suite (dup=0.5, seed 1051, first
    // two epochs) now runs against a 2-shard serving path while an
    // external relay floods the capacity-1 ingest queue. Graceful
    // degradation means: /healthz flips (shed and/or quarantine budget),
    // every data endpoint keeps answering 200 throughout, and once the
    // flood stops and clean epochs stream, health recovers on its own.
    let options = ServeOptions {
        shards: 2,
        ingest_queue: 1,
        chaos: ChaosOptions { spec: "dup=0.5".parse().unwrap(), seed: 1051 },
        chaos_epochs: 2,
        ..test_options()
    };

    with_serve_loop(options, |addr| {
        poll_until(addr, "/readyz", Duration::from_secs(60), |s, _| s == 200);

        // Flood until the shed budget (>10% of offered records shed over
        // the SLO window) is visibly breached and /healthz degrades.
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut index = 0u32;
        let degraded = loop {
            for _ in 0..5 {
                let batch = external_batch(10_000 + index, 40);
                let (status, _) = http_post(addr, "/ingest", &encode_batch(&batch));
                assert!(status == 200 || status == 429, "receipt status {status}");
                index += 1;
            }
            let (status, body) = http_get(addr, "/healthz");
            if status == 503 {
                break body;
            }
            assert!(Instant::now() < deadline, "healthz never degraded under overload");
            std::thread::sleep(Duration::from_millis(25));
        };
        assert!(degraded.contains("degraded"), "reason surfaced: {degraded}");
        assert!(degraded.contains("budget"), "a budget rule is named: {degraded}");

        // Degraded is a signal, not an outage: the data plane stays up.
        for path in ["/metrics", "/metrics.json", "/alerts?n=5", "/readyz", "/shards"] {
            let (status, _) = http_get(addr, path);
            assert_eq!(status, 200, "{path} must not fail under overload");
        }
        let (_, metrics) = http_get(addr, "/metrics");
        assert!(metrics.contains("dds_shed_records_total"), "{metrics}");

        // Shedding is load-shedding, not collapse: with the flood gone,
        // the breach ages out of the watchdog window and /healthz
        // recovers while the serve loop keeps ingesting clean epochs.
        let (_, healthy) = poll_until(addr, "/healthz", Duration::from_secs(120), |s, _| s == 200);
        assert!(healthy.contains("\"ok\""), "recovered health body: {healthy}");
    });
}
