//! CLI acceptance tests for the chaos layer: `dds pipeline --chaos …`
//! must complete without panics, report quarantine/imputation counts, and
//! replay byte-identically for a fixed `(spec, seed)` pair.

use dds_cli::{parse, run};

fn run_cli(args: &[&str]) -> String {
    let parsed = parse(args.iter().map(|s| s.to_string()).collect()).expect("args parse");
    run(parsed).expect("command runs")
}

/// Chaos seed for the matrix-sensitive tests. CI's `chaos-matrix` job sets
/// `DDS_CHAOS_SEED` to sweep fixed seeds; local runs default to 7.
fn matrix_seed() -> String {
    std::env::var("DDS_CHAOS_SEED").unwrap_or_else(|_| "7".to_string())
}

#[test]
fn matrix_seed_pipeline_degrades_gracefully_and_replays_byte_identically() {
    let seed = matrix_seed();
    let args = [
        "pipeline",
        "--scale",
        "test",
        "--chaos",
        "drop=0.05,nullattr=0.02,sentinel=0.02,dup=0.03,reorder=0.03",
        "--chaos-seed",
        &seed,
        "--threads",
        "1",
    ];
    let first = run_cli(&args);
    let second = run_cli(&args);
    assert_eq!(first, second, "seed {seed} must replay byte-identically");
    assert!(first.contains("failure groups"), "{first}");
    assert!(first.contains(&format!("(seed {seed})")), "{first}");
    assert!(first.contains("training quality:"), "{first}");
    assert!(first.contains("live quality:"), "{first}");
}

#[test]
fn chaos_pipeline_reports_quality_and_replays_byte_identically() {
    let args = [
        "pipeline",
        "--scale",
        "test",
        "--chaos",
        "drop=0.05,nullattr=0.02",
        "--chaos-seed",
        "7",
        "--threads",
        "1",
    ];
    let first = run_cli(&args);
    let second = run_cli(&args);
    assert_eq!(first, second, "same chaos seed must replay byte-identically");

    assert!(first.contains("failure groups"), "{first}");
    assert!(first.contains("chaos drop=0.05,nullattr=0.02 (seed 7)"), "{first}");
    assert!(first.contains("faults injected") || first.contains("train faults"), "{first}");
    assert!(first.contains("training quality:"), "{first}");
    assert!(first.contains("live quality:"), "{first}");
    assert!(first.contains("quarantined"), "{first}");
    assert!(first.contains("attrs imputed"), "{first}");
}

#[test]
fn chaos_pipeline_is_thread_count_invariant() {
    let sequential = run_cli(&[
        "pipeline",
        "--scale",
        "test",
        "--chaos",
        "drop=0.03,dup=0.02",
        "--chaos-seed",
        "23",
        "--threads",
        "1",
    ]);
    let parallel = run_cli(&[
        "pipeline",
        "--scale",
        "test",
        "--chaos",
        "drop=0.03,dup=0.02",
        "--chaos-seed",
        "23",
        "--threads",
        "4",
    ]);
    assert_eq!(sequential, parallel, "chaos corruption must not depend on worker threads");
}

#[test]
fn different_chaos_seeds_produce_different_corruption() {
    let seed7 = run_cli(&[
        "pipeline",
        "--scale",
        "test",
        "--chaos",
        "drop=0.05",
        "--chaos-seed",
        "7",
        "--threads",
        "1",
    ]);
    let seed8 = run_cli(&[
        "pipeline",
        "--scale",
        "test",
        "--chaos",
        "drop=0.05",
        "--chaos-seed",
        "8",
        "--threads",
        "1",
    ]);
    assert_ne!(seed7, seed8, "distinct chaos seeds must corrupt differently");
}

#[test]
fn clean_pipeline_carries_no_chaos_reporting() {
    let out = run_cli(&["pipeline", "--scale", "test", "--threads", "1"]);
    assert!(!out.contains("chaos"), "{out}");
    assert!(!out.contains("quality"), "{out}");
}

#[test]
fn every_operator_at_once_degrades_gracefully() {
    // The kitchen sink: all seven operators firing on both fleets. The
    // pipeline must still train, monitor and report — graceful degradation,
    // not a panic or an error.
    let out = run_cli(&[
        "pipeline",
        "--scale",
        "test",
        "--chaos",
        "drop=0.08,truncate=0.2,nullattr=0.03,sentinel=0.03,dup=0.05,reorder=0.05,skew=0.05",
        "--chaos-seed",
        "1051",
        "--threads",
        "1",
    ]);
    assert!(out.contains("failure groups"), "{out}");
    assert!(out.contains("training quality:"), "{out}");
    assert!(out.contains("live quality:"), "{out}");
}
