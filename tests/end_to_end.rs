//! End-to-end integration: the full pipeline on a simulated fleet must
//! reproduce the paper's qualitative results — group structure, signature
//! forms, environmental diagnoses and prediction quality.

use dds::prelude::*;
use dds_core::FailureType;
use dds_stats::SignatureForm;

fn analyzed() -> (Dataset, dds_core::AnalysisReport) {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(1_001)).run();
    let report = Analysis::new(AnalysisConfig::default()).run(&dataset).unwrap();
    (dataset, report)
}

#[test]
fn pipeline_reproduces_three_failure_groups() {
    let (_, report) = analyzed();
    let cat = &report.categorization;
    assert_eq!(cat.num_groups(), 3);
    // Population shape: logical > head >> bad sector (Table II).
    let fractions: Vec<f64> = cat.groups().iter().map(|g| g.population_fraction).collect();
    assert!(fractions[0] > fractions[2], "G1 {fractions:?}");
    assert!(fractions[2] > fractions[1], "G3 > G2 {fractions:?}");
    assert_eq!(cat.groups()[0].failure_type, FailureType::Logical);
    assert_eq!(cat.groups()[1].failure_type, FailureType::BadSector);
    assert_eq!(cat.groups()[2].failure_type, FailureType::HeadWear);
}

#[test]
fn unsupervised_grouping_matches_ground_truth() {
    let (dataset, report) = analyzed();
    let ari =
        report.categorization.ground_truth_agreement(&dataset, &report.failure_records).unwrap();
    assert!(ari > 0.9, "ARI {ari}");
}

#[test]
fn signature_forms_match_equations_3_4_6() {
    let (_, report) = analyzed();
    assert_eq!(report.degradation[0].dominant_form, SignatureForm::Quadratic);
    assert_eq!(report.degradation[1].dominant_form, SignatureForm::Linear);
    assert_eq!(report.degradation[2].dominant_form, SignatureForm::Cubic);
}

#[test]
fn degradation_windows_are_ordered_like_the_paper() {
    let (_, report) = analyzed();
    let g1 = report.degradation[0].window_stats.1;
    let g2 = report.degradation[1].window_stats.1;
    let g3 = report.degradation[2].window_stats.1;
    // Paper: d ≤ 12 for G1, d ≈ 377 for G2, d ∈ 10..24 for G3.
    assert!(g1 < 20.0, "G1 mean window {g1}");
    assert!(g2 > 100.0, "G2 mean window {g2}");
    assert!(g3 > g1 && g3 < g2, "G3 mean window {g3}");
}

#[test]
fn environmental_diagnoses_hold() {
    let (_, report) = analyzed();
    let tc = report.z_scores_of(Attribute::TemperatureCelsius).unwrap();
    let poh = report.z_scores_of(Attribute::PowerOnHours).unwrap();
    // Fig. 11: TC singles out Group 1 (hot logical failures).
    assert_eq!(tc.most_separated_group(), Some(0));
    // Fig. 12: POH singles out Group 3 (old head-failure drives).
    assert_eq!(poh.most_separated_group(), Some(2));
    // Fig. 11: the thermally active groups run hotter than good drives
    // (negative TC z). The bad-sector group carries only weak self-heating
    // and ~5 drives at test scale, so rack-placement luck can wash out its
    // sign — require only that it never looks clearly cooler; §V-A draws
    // its thermal conclusions from Group 1 alone.
    assert!(tc.mean_z(0).unwrap() < 0.0, "logical group must run hot");
    assert!(tc.mean_z(2).unwrap() < 0.0, "head-wear group must run hot");
    assert!(tc.mean_z(1).unwrap() < 3.0, "bad-sector group must not look cooler");
}

#[test]
fn prediction_error_rates_beat_the_paper_bounds() {
    let (_, report) = analyzed();
    for g in &report.prediction.groups {
        // Table III's worst row is 10.8%; synthetic data is cleaner, so
        // anything under that bound reproduces the claim.
        assert!(
            g.error_rate <= 0.108 + 1e-9,
            "group {} error rate {:.3}",
            g.group_index + 1,
            g.error_rate
        );
    }
}

#[test]
fn centroid_degradation_has_valid_normalization() {
    let (_, report) = analyzed();
    for group in &report.degradation {
        let centroid = &group.centroid;
        assert_eq!(*centroid.degradation.last().unwrap(), -1.0);
        assert!(centroid.degradation.iter().all(|&s| (-1.0..=1e-9).contains(&s)));
        assert_eq!(centroid.times.len(), centroid.degradation.len());
    }
}

#[test]
fn influence_analysis_matches_figure_nine() {
    let (_, report) = analyzed();
    // Group 2's strongest correlations are RUE (positive) and R-RSC
    // (negative).
    let g2 = &report.attribute_influence[1];
    let rue = g2.correlation_of(Attribute::ReportedUncorrectable).unwrap();
    let rrsc = g2.correlation_of(Attribute::RawReallocatedSectors).unwrap();
    assert!(rue > 0.8, "G2 RUE {rue}");
    assert!(rrsc < -0.8, "G2 R-RSC {rrsc}");
    // Groups 1 and 3: RRER strongly correlates.
    for idx in [0usize, 2] {
        let rrer =
            report.attribute_influence[idx].correlation_of(Attribute::RawReadErrorRate).unwrap();
        assert!(rrer > 0.5, "G{} RRER {rrer}", idx + 1);
    }
}

#[test]
fn profile_censoring_matches_figure_one() {
    let (_, report) = analyzed();
    let d = &report.profile_durations;
    assert!(d.fraction_over_10_days > 0.6, "{}", d.fraction_over_10_days);
    assert!(
        d.fraction_full_20_days > 0.35 && d.fraction_full_20_days < 0.7,
        "{}",
        d.fraction_full_20_days
    );
}

#[test]
fn facade_reexports_are_usable() {
    // The `dds` façade must expose every crate.
    let _ = dds::stats::SignatureForm::Linear;
    let _ = dds::smartsim::Attribute::TemperatureCelsius;
    let config = dds::cluster::KMeansConfig::new(2);
    assert_eq!(config.k, 2);
    let _ = dds::regtree::TreeConfig::default();
    let _ = dds::core::AnalysisConfig::default();
}
