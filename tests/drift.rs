//! Golden drift tests: the online-learning loop's drift → refit →
//! promote → recover cycle, replayed deterministically at library level.
//!
//! The serve loop's wall clock would smear the watchdog's 30-second SLO
//! window across machine speeds, so these tests drive the same pieces —
//! [`DriftDetector`], [`Watchdog`], [`OnlineTrainer`] — with a synthetic
//! clock (one second per ingest batch) and pin the exact batch tick where
//! a chaos-skewed stream degrades `/healthz` through the drift budget,
//! and the exact tick where health recovers after the refit candidate is
//! promoted and the baseline absorbs the stream's expected disorder.
//!
//! Some tests assert on the process-global metrics registry, so every
//! test takes `DRIFT_LOCK` first (the `tests/serve.rs` convention).

use dds_chaos::ChaosEngine;
use dds_core::{Analysis, AnalysisConfig, OnlineTrainer, TrainingContext};
use dds_monitor::{
    Alert, DriftBaseline, DriftDetector, FleetMonitor, ModelBundle, MonitorConfig, ShadowScorer,
};
use dds_obs::metrics::Registry;
use dds_obs::timeseries::TimeSeriesStore;
use dds_obs::watchdog::Watchdog;
use dds_smartsim::stream::hour_ordered;
use dds_smartsim::{DriveId, FleetConfig, FleetSimulator, HealthRecord, StreamingFleet};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static DRIFT_LOCK: Mutex<()> = Mutex::new(());

fn drift_lock() -> MutexGuard<'static, ()> {
    DRIFT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The serve integration tests' seed, reused so the scenario matches
/// `dds serve --seed 77 --chaos skew=0.5 --chaos-seed 1051`.
const SEED: u64 = 77;

/// Splits an hour-ordered (possibly skew-scrambled) stream into the same
/// maximal same-hour runs the serve loop ingests as batches.
fn hour_batches(records: &[(DriveId, HealthRecord)]) -> Vec<&[(DriveId, HealthRecord)]> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < records.len() {
        let hour = records[start].1.hour;
        let end = start + records[start..].iter().take_while(|(_, r)| r.hour == hour).count();
        out.push(&records[start..end]);
        start = end;
    }
    out
}

#[test]
fn chaos_skew_trips_the_drift_budget_at_a_pinned_tick_and_promotion_recovers() {
    let _guard = drift_lock();

    // Serving model: cold-trained on the clean training fleet, exactly
    // like the serve loop's in-process path.
    let training = FleetSimulator::new(FleetConfig::test_scale().with_seed(SEED)).run();
    let ctx = TrainingContext { seed: SEED, scale: "test".to_string(), git_sha: String::new() };
    let (report, _model) =
        Analysis::new(AnalysisConfig::default()).train(&training, &ctx).expect("cold training");
    let serving = ModelBundle::from_analysis(&training, &report);

    // Live stream: ingest epochs seeded SEED+1 onward, every record run
    // through `--chaos skew=0.5 --chaos-seed 1051` (the chaos engine
    // salts each epoch by its index, like serve).
    let engine = ChaosEngine::new("skew=0.5".parse().expect("spec"), 1051);
    let mut stream = StreamingFleet::new(FleetConfig::test_scale().with_seed(SEED + 1))
        .with_record_stage(engine.into_record_stage(0));

    // Synthetic clock: one second per ingest batch, so the watchdog's
    // 30-second drift-budget window is exactly 30 batches regardless of
    // machine speed.
    let registry = Registry::new();
    let store = TimeSeriesStore::new(512);
    let watchdog = Watchdog::new(Watchdog::standard_rules());
    let health = watchdog.health();
    let mut drift = DriftDetector::new(DriftBaseline::from_bundle(&serving, 0.0));
    let mut trainer = OnlineTrainer::new(AnalysisConfig::default());

    let mut tick = 0u64;
    let mut degraded_at = None;
    let mut degraded_reason = String::new();

    // Epoch 1: the skewed stream against the clean-trained baseline.
    let (manifest, records) = stream.next_epoch_with_records();
    trainer.begin_epoch(&manifest);
    trainer.observe_batch(&records);
    drift.new_session();
    for batch in hour_batches(&records) {
        tick += 1;
        drift.observe_batch(batch);
        drift.publish(&registry);
        store.push(Duration::from_secs(tick), registry.snapshot());
        watchdog.evaluate(&store);
        if degraded_at.is_none() && health.is_degraded() {
            degraded_at = Some(tick);
            degraded_reason = health.degraded_reason().unwrap_or_default();
        }
    }
    let degraded_at = degraded_at.expect("skew=0.5 must blow the 5% drift budget");
    assert!(degraded_reason.contains("drift budget"), "rule named: {degraded_reason}");
    // The golden pin: with these seeds the budget trips on exactly this
    // batch tick. A change anywhere in the chaos engine, the drift
    // detector or the watchdog rate math moves this number.
    assert_eq!(degraded_at, 4, "drift-budget trip tick drifted");
    assert!(drift.excess_drifted() > 0, "ordering drift observed");

    // The skew scrambles hour runs, so one fleet epoch ingests as many
    // small batches; the breach persists for the whole epoch (the clean
    // baseline expects zero disorder). Pin the epoch's batch count too —
    // it moves if the chaos engine or the stream change shape.
    let promoted_at = tick;
    assert_eq!(promoted_at, 33_187, "epoch-1 batch count drifted");
    assert!(health.is_degraded(), "degraded until the promotion");

    // Refit on the skewed window (through the quality gate) and promote:
    // the candidate's baseline expects the window's disorder rate.
    let outcome = trainer.refit(&ctx).expect("refit over the skewed window");
    let expected = outcome.expected_disorder();
    assert!(expected > 0.0, "skewed window must report disorder");
    let candidate = ModelBundle::from_trained(&outcome.model).expect("candidate bundle");
    drift.swap_baseline(DriftBaseline::from_bundle(&candidate, expected));
    assert_eq!(drift.swaps(), 1);

    // Epoch 2: the stream is still skewed, but the promoted baseline
    // absorbs the disorder — the drifted counter flattens, the breach
    // ages out of the 30-tick window, and health self-heals.
    let (_, records) = stream.next_epoch_with_records();
    drift.new_session();
    let mut recovered_at = None;
    for batch in hour_batches(&records) {
        tick += 1;
        drift.observe_batch(batch);
        drift.publish(&registry);
        store.push(Duration::from_secs(tick), registry.snapshot());
        watchdog.evaluate(&store);
        if recovered_at.is_none() && !health.is_degraded() {
            recovered_at = Some(tick);
        }
    }
    let recovered_at = recovered_at.expect("promotion must recover health");
    // The recovery pin: exactly one 30-tick SLO window after the swap —
    // the candidate's baseline fully absorbs the skew (the drifted
    // counter goes flat at the swap), so recovery waits only for the
    // pre-promotion breach to drain from the watchdog window.
    assert_eq!(recovered_at, promoted_at + 30, "recovery tick drifted");
    assert!(!health.is_degraded(), "healthy at epoch end");

    // The monotonic counter partition survived the swap.
    let snapshot = registry.snapshot();
    let drifted = snapshot.counter_value("dds_drift_drifted_total").unwrap_or(0);
    let clean = snapshot.counter_value("dds_drift_clean_total").unwrap_or(0);
    let total = snapshot.counter_value("dds_drift_records_total").unwrap_or(0);
    assert_eq!(drifted + clean, total, "drifted + clean must partition records");
}

#[test]
fn shadow_scoring_never_inflates_the_serving_metrics() {
    let _guard = drift_lock();
    let registry = dds_obs::metrics::global();
    registry.reset();

    let training = FleetSimulator::new(FleetConfig::test_scale().with_seed(SEED)).run();
    let report = Analysis::new(AnalysisConfig::default()).run(&training).expect("serving analysis");
    let bundle = ModelBundle::from_analysis(&training, &report);

    let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(SEED + 1)).run();
    let records = hour_ordered(&live);

    // The serving monitor counts into the global registry (serve's
    // configuration); the shadow side must never touch those counters.
    let mut serving = FleetMonitor::new(bundle.clone(), MonitorConfig::default());
    let mut shadow = ShadowScorer::new(bundle, MonitorConfig::default());

    let mut serving_alert_count = 0u64;
    for batch in records.chunks(512) {
        let alerts: Vec<Alert> = batch.iter().flat_map(|(d, r)| serving.ingest(*d, r)).collect();
        serving_alert_count += alerts.len() as u64;
        let ingested_before = registry.counter("dds_monitor_records_ingested_total").get();
        let alerts_before = registry.counter("dds_monitor_alerts_total").get();
        assert_eq!(shadow.score_batch(batch, &alerts), 0, "identical models agree");
        assert_eq!(
            registry.counter("dds_monitor_records_ingested_total").get(),
            ingested_before,
            "shadow scoring must not count into the serving ingest totals"
        );
        assert_eq!(
            registry.counter("dds_monitor_alerts_total").get(),
            alerts_before,
            "shadow alerts die silently"
        );
    }
    assert!(serving_alert_count > 0, "the live fleet must alert somewhere");
    assert_eq!(shadow.divergence(), 0);
    assert_eq!(shadow.candidate_alerts(), serving_alert_count);

    // Publishing is the one explicit write, into its own counter family.
    shadow.publish(registry);
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter_value("dds_shadow_divergence_total"),
        Some(0),
        "published divergence"
    );
    assert_eq!(
        snapshot.counter_value("dds_shadow_batches_total"),
        Some(shadow.batches()),
        "published batches"
    );
}
