//! Failure injection: corrupt inputs, degenerate datasets and hostile
//! telemetry must produce clean errors (or sensible results), never panics.

use dds::prelude::*;
use dds_core::CategorizationConfig;
use dds_smartsim::dataset::{DriveId, DriveProfile};
use dds_smartsim::io::read_csv;
use dds_smartsim::NUM_ATTRIBUTES;
use proptest::prelude::*;

fn record(hour: u32, fill: f64) -> HealthRecord {
    HealthRecord { hour, values: [fill; NUM_ATTRIBUTES] }
}

fn config_without_svc() -> AnalysisConfig {
    AnalysisConfig {
        categorization: CategorizationConfig { run_svc: false, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn nan_telemetry_is_rejected_at_assembly() {
    let drive =
        DriveProfile::new(DriveId(0), DriveLabel::Good, vec![record(0, 1.0), record(1, f64::NAN)]);
    assert!(Dataset::new(vec![drive]).is_err());
}

#[test]
fn single_record_failed_drives_fail_feature_extraction_cleanly() {
    let failed = DriveProfile::new(
        DriveId(0),
        DriveLabel::Failed(FailureMode::Logical),
        vec![record(0, 1.0)],
    );
    let good =
        DriveProfile::new(DriveId(1), DriveLabel::Good, vec![record(0, 0.0), record(1, 2.0)]);
    let dataset = Dataset::new(vec![failed, good]).unwrap();
    let err = Analysis::new(config_without_svc()).run(&dataset).unwrap_err();
    assert!(err.to_string().contains("fewer than 2 records"), "{err}");
}

#[test]
fn constant_telemetry_survives_the_pipeline_or_errors_cleanly() {
    // Every drive reports identical constants: normalization degenerates to
    // zeros, clustering has nothing to split on — any outcome is fine as
    // long as it is not a panic.
    let drives: Vec<DriveProfile> = (0..30)
        .map(|i| {
            let label =
                if i < 10 { DriveLabel::Failed(FailureMode::Logical) } else { DriveLabel::Good };
            let records = (0..50).map(|h| record(h, 5.0)).collect();
            DriveProfile::new(DriveId(i), label, records)
        })
        .collect();
    let dataset = Dataset::new(drives).unwrap();
    let _ = Analysis::new(config_without_svc()).run(&dataset);
}

#[test]
fn adversarial_extreme_values_do_not_break_analysis() {
    // One drive reports absurd magnitudes, squashing everyone else's
    // normalized range.
    let mut fleet = FleetSimulator::new(
        FleetConfig::test_scale().with_good_drives(30).with_failed_drives(12).with_seed(77),
    )
    .run()
    .drives()
    .to_vec();
    let spiky: Vec<HealthRecord> = (0..60)
        .map(|h| {
            let mut r = record(h, 0.0);
            r.values[0] = 1e12;
            r.values[8] = -1e12;
            r
        })
        .collect();
    fleet.push(DriveProfile::new(DriveId(9_999), DriveLabel::Good, spiky));
    let dataset = Dataset::new(fleet).unwrap();
    // The run may or may not keep three groups, but it must complete.
    let report = Analysis::new(config_without_svc()).run(&dataset).unwrap();
    assert!(report.categorization.num_groups() >= 1);
}

#[test]
fn monitor_survives_hostile_streams() {
    let training = FleetSimulator::new(FleetConfig::test_scale().with_seed(78)).run();
    let analysis = Analysis::new(config_without_svc()).run(&training).unwrap();
    let bundle = ModelBundle::from_analysis(&training, &analysis);
    let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
    // Out-of-range values, zeros, huge spikes, duplicated hours.
    for (i, fill) in
        [(0u32, -1e9), (1, 1e9), (2, 0.0), (2, 0.0), (3, f64::MAX / 2.0)].into_iter().enumerate()
    {
        let _ = monitor.ingest(DriveId(1), &record(fill.0, fill.1));
        let _ = i;
    }
    assert_eq!(monitor.drives_tracked(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_parser_never_panics_on_garbage(input in ".{0,400}") {
        let _ = read_csv(input.as_bytes());
    }

    #[test]
    fn csv_parser_never_panics_on_almost_valid_rows(
        id in 0u32..5,
        hour in 0u32..100,
        label in prop::sample::select(vec!["good", "failed", "failed:logical failures", "weird"]),
        values in prop::collection::vec(-1e9..1e9f64, 0..15),
    ) {
        let cells: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        let line = format!("{id},{label},{hour},{}", cells.join(","));
        let _ = read_csv(line.as_bytes());
    }

    #[test]
    fn monitor_ingest_never_panics(
        hours in prop::collection::vec(0u32..500, 1..40),
        fills in prop::collection::vec(-1e6..1e6f64, 1..40),
    ) {
        // A tiny, cheap bundle: constant scaler bounds and no group models
        // exercises the bundle-empty path too.
        let scaler = dds_stats::MinMaxScaler::from_bounds(
            &[0.0; NUM_ATTRIBUTES],
            &[100.0; NUM_ATTRIBUTES],
        )
        .unwrap();
        let bundle = ModelBundle::new(scaler, Vec::new(), [50.0; NUM_ATTRIBUTES], 1.0);
        let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
        for (h, f) in hours.iter().zip(&fills) {
            let _ = monitor.ingest(DriveId(0), &record(*h, *f));
        }
    }
}
