//! Determinism regression: every parallelism mode must produce results
//! identical to sequential execution — same drives, same clusters, same
//! trained models, bit for bit. The execution layer (see
//! `dds_stats::par`) promises this via per-item RNG streams and
//! fixed-order reductions; these tests pin the promise at the three
//! user-facing entry points.

use dds::prelude::*;
use dds_cluster::{KMeans, KMeansConfig};
use dds_stats::Parallelism;

const MODES: [Parallelism; 2] = [Parallelism::Threads(4), Parallelism::Auto];

fn assert_bits_eq(label: &str, a: f64, b: f64) {
    assert_eq!(a.to_bits(), b.to_bits(), "{label}: {a} != {b}");
}

#[test]
fn fleet_generation_is_identical_across_modes() {
    let baseline = FleetSimulator::new(
        FleetConfig::test_scale().with_seed(4_242).with_parallelism(Parallelism::Sequential),
    )
    .run();
    for mode in MODES {
        let dataset =
            FleetSimulator::new(FleetConfig::test_scale().with_seed(4_242).with_parallelism(mode))
                .run();
        // DriveProfile equality covers ids, labels and every health record.
        assert_eq!(dataset.drives(), baseline.drives(), "fleet generation diverged under {mode:?}");
    }
}

#[test]
fn kmeans_fit_is_identical_across_modes() {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(4_243)).run();
    let records = dds_core::FailureRecordSet::extract(&dataset, 24).unwrap();
    let points: Vec<Vec<f64>> = records.failure_records().iter().map(|r| r.to_vec()).collect();
    let baseline =
        KMeans::new(KMeansConfig::new(3).with_seed(7).with_parallelism(Parallelism::Sequential))
            .fit(&points)
            .unwrap();
    for mode in MODES {
        let result = KMeans::new(KMeansConfig::new(3).with_seed(7).with_parallelism(mode))
            .fit(&points)
            .unwrap();
        assert_eq!(result, baseline, "k-means diverged under {mode:?}");
    }
}

#[test]
fn full_analysis_is_identical_across_modes() {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(4_244)).run();
    let run = |mode: Parallelism| {
        Analysis::new(AnalysisConfig::default().with_parallelism(mode)).run(&dataset).unwrap()
    };
    let baseline = run(Parallelism::Sequential);
    for mode in MODES {
        let report = run(mode);
        assert_eq!(
            report.categorization.assignments(),
            baseline.categorization.assignments(),
            "cluster assignments diverged under {mode:?}"
        );
        for (group, base) in
            report.categorization.groups().iter().zip(baseline.categorization.groups())
        {
            assert_eq!(group.failure_type, base.failure_type);
            assert_eq!(group.centroid_drive, base.centroid_drive);
        }
        for (group, base) in report.degradation.iter().zip(&baseline.degradation) {
            assert_eq!(group.dominant_form, base.dominant_form);
            for (a, b) in group.centroid.degradation.iter().zip(&base.centroid.degradation) {
                assert_bits_eq("centroid degradation", *a, *b);
            }
        }
        for (group, base) in report.prediction.groups.iter().zip(&baseline.prediction.groups) {
            assert_eq!(group.tree, base.tree, "trained tree diverged under {mode:?}");
            assert_bits_eq("error rate", group.error_rate, base.error_rate);
        }
        for (z, base) in report.z_scores.iter().zip(&baseline.z_scores) {
            assert_eq!(z.attribute, base.attribute);
            for (row, base_row) in z.by_group.iter().zip(&base.by_group) {
                for (a, b) in row.iter().zip(base_row) {
                    match (a, b) {
                        (Some(a), Some(b)) => assert_bits_eq("z-score", *a, *b),
                        (None, None) => {}
                        _ => panic!("z-score defined-ness diverged under {mode:?}"),
                    }
                }
            }
        }
        for ((attr, summary), (base_attr, base_summary)) in
            report.attribute_boxplots.iter().zip(&baseline.attribute_boxplots)
        {
            assert_eq!(attr, base_attr);
            assert_eq!(summary, base_summary, "boxplots diverged under {mode:?}");
        }
    }
}
