//! Integration tests of the §VI monitoring middleware through the façade:
//! train on one fleet, monitor another, and check the operational story
//! end to end.

use dds::prelude::*;
use dds_monitor::{AlertKind, Severity};

fn trained_monitor(train_seed: u64) -> FleetMonitor {
    let training = FleetSimulator::new(FleetConfig::test_scale().with_seed(train_seed)).run();
    let analysis = Analysis::new(AnalysisConfig::default()).run(&training).unwrap();
    let bundle = ModelBundle::from_analysis(&training, &analysis);
    FleetMonitor::new(bundle, MonitorConfig::default())
}

#[test]
fn cross_fleet_monitoring_catches_every_failure_type() {
    let mut monitor = trained_monitor(42_001);
    let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(42_002)).run();
    for mode in FailureMode::ALL {
        let mut covered = 0usize;
        let mut total = 0usize;
        for drive in live.failed_drives() {
            if drive.label().failure_mode() != Some(mode) {
                continue;
            }
            total += 1;
            if !monitor.replay(drive.id(), drive.records()).is_empty() {
                covered += 1;
            }
        }
        assert!(
            covered as f64 / total.max(1) as f64 > 0.8,
            "{mode}: alert coverage {covered}/{total}"
        );
    }
}

#[test]
fn alerts_name_the_right_failure_type_for_mechanical_failures() {
    let mut monitor = trained_monitor(42_003);
    let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(42_004)).run();
    let mut correct = 0usize;
    let mut total = 0usize;
    for drive in live.failed_drives() {
        let Some(mode) = drive.label().failure_mode() else { continue };
        if mode == FailureMode::Logical {
            continue;
        }
        let alerts = monitor.replay(drive.id(), drive.records());
        let Some(critical) = alerts.iter().find(|a| {
            a.severity == Severity::Critical && a.kind == AlertKind::DegradationPrediction
        }) else {
            continue;
        };
        total += 1;
        if critical.suspected_type.as_mode() == Some(mode) {
            correct += 1;
        }
    }
    assert!(total > 10, "need critical alerts to grade ({total})");
    assert!(correct as f64 / total as f64 > 0.8, "type attribution {correct}/{total}");
}

#[test]
fn interleaved_ingestion_matches_per_drive_replay() {
    // Alerts must not depend on drive interleaving.
    let live = FleetSimulator::new(
        FleetConfig::test_scale().with_good_drives(10).with_failed_drives(6).with_seed(42_005),
    )
    .run();

    let mut replay_monitor = trained_monitor(42_006);
    let mut per_drive: Vec<(u32, Severity)> = Vec::new();
    for drive in live.drives() {
        for alert in replay_monitor.replay(drive.id(), drive.records()) {
            per_drive.push((alert.drive.0, alert.severity));
        }
    }

    let mut interleaved_monitor = trained_monitor(42_006);
    let mut interleaved: Vec<(u32, Severity)> = Vec::new();
    let max_len = live.drives().iter().map(|d| d.records().len()).max().unwrap();
    for i in 0..max_len {
        for drive in live.drives() {
            if let Some(record) = drive.records().get(i) {
                for alert in interleaved_monitor.ingest(drive.id(), record) {
                    interleaved.push((alert.drive.0, alert.severity));
                }
            }
        }
    }

    per_drive.sort_unstable();
    interleaved.sort_unstable();
    assert_eq!(per_drive, interleaved);
}

#[test]
fn monitor_state_is_clonable_for_checkpointing() {
    let live = FleetSimulator::new(
        FleetConfig::test_scale().with_good_drives(5).with_failed_drives(3).with_seed(42_007),
    )
    .run();
    let mut monitor = trained_monitor(42_008);
    let drive = live.failed_drives().next().unwrap();
    let half = drive.records().len() / 2;
    monitor.replay(drive.id(), &drive.records()[..half]);
    // A checkpointed clone must continue identically.
    let mut resumed = monitor.clone();
    let a = monitor.replay(drive.id(), &drive.records()[half..]);
    let b = resumed.replay(drive.id(), &drive.records()[half..]);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.severity, y.severity);
        assert_eq!(x.hour, y.hour);
    }
}
