//! Online-learning equivalence suite: a full-window streaming refit must
//! be bit-identical to cold training on the same window.
//!
//! This is the online analogue of the warm-vs-cold model-artifact proof:
//! the serving path may only hot-swap a refit candidate because nothing
//! about *how* the window's records arrived — hour-interleaved, shard by
//! shard, one shard or four — can change the artifact the trainer
//! produces. The only permitted difference is the `created_unix`
//! wall-clock stamp, which both sides normalize before comparing bytes.

use dds_core::{
    Analysis, AnalysisConfig, CategorizationConfig, OnlineTrainer, TrainedModel, TrainingContext,
};
use dds_monitor::shard_for;
use dds_smartsim::stream::hour_ordered;
use dds_smartsim::{DriveId, FleetConfig, HealthRecord, StreamingFleet};

fn config() -> AnalysisConfig {
    AnalysisConfig {
        categorization: CategorizationConfig { run_svc: false, ..Default::default() },
        ..Default::default()
    }
}

fn ctx(seed: u64) -> TrainingContext {
    TrainingContext { seed, scale: "test".to_string(), git_sha: String::new() }
}

/// Canonical byte form of a model with the wall-clock stamp normalized
/// out (the one field two training runs of the same window legitimately
/// disagree on).
fn stamped_bytes(mut model: TrainedModel) -> Vec<u8> {
    model.meta.created_unix = 0;
    model.to_bytes().expect("model serializes")
}

/// Re-orders an hour-ordered stream the way an N-shard ingest tier would
/// consume it: shard 0's records first (in arrival order), then shard
/// 1's, and so on — the most adversarial legal reordering, since a
/// drive's history never spans shards.
fn sharded_order(
    records: &[(DriveId, HealthRecord)],
    shards: usize,
) -> Vec<(DriveId, HealthRecord)> {
    let mut out = Vec::with_capacity(records.len());
    for shard in 0..shards {
        out.extend(records.iter().filter(|(drive, _)| shard_for(*drive, shards) == shard).cloned());
    }
    out
}

#[test]
fn streaming_refit_is_bit_identical_to_cold_training() {
    for seed in [7u64, 23, 1051] {
        let mut stream = StreamingFleet::new(FleetConfig::test_scale().with_seed(seed));
        let window = stream.next_epoch();
        let (_, cold_model) =
            Analysis::new(config()).train(&window, &ctx(seed)).expect("cold training succeeds");
        let cold_bytes = stamped_bytes(cold_model);

        let records = hour_ordered(&window);
        for shards in [1usize, 4] {
            let mut trainer = OnlineTrainer::new(config());
            trainer.begin_epoch(&window);
            trainer.observe_batch(&sharded_order(&records, shards));
            assert_eq!(trainer.window_records(), records.len() as u64);

            let outcome = trainer.refit(&ctx(seed)).expect("streaming refit succeeds");
            assert!(outcome.quality.is_none(), "a clean window must skip the quality gate");
            assert_eq!(outcome.expected_disorder(), 0.0);
            assert_eq!(
                stamped_bytes(outcome.model),
                cold_bytes,
                "seed {seed}, {shards} shard(s): refit artifact must match cold training byte \
                 for byte"
            );
        }
    }
}

#[test]
fn refit_window_slides_with_epochs() {
    // Two consecutive epochs refit to two *different* models (the window
    // really slides), and replaying epoch 2 alone matches a cold train on
    // epoch 2 — the window holds exactly one epoch, no residue.
    let seed = 7u64;
    let mut stream = StreamingFleet::new(FleetConfig::test_scale().with_seed(seed));
    let first = stream.next_epoch();
    let second = stream.next_epoch();

    let mut trainer = OnlineTrainer::new(config());
    trainer.begin_epoch(&first);
    trainer.observe_batch(&hour_ordered(&first));
    let refit_first = trainer.refit(&ctx(seed)).expect("epoch 1 refit");

    trainer.begin_epoch(&second);
    trainer.observe_batch(&hour_ordered(&second));
    let refit_second = trainer.refit(&ctx(seed)).expect("epoch 2 refit");

    let (_, cold_second) =
        Analysis::new(config()).train(&second, &ctx(seed)).expect("cold training succeeds");

    let first_bytes = stamped_bytes(refit_first.model);
    let second_bytes = stamped_bytes(refit_second.model);
    assert_ne!(first_bytes, second_bytes, "consecutive epochs must refit differently");
    assert_eq!(second_bytes, stamped_bytes(cold_second), "no residue from the previous window");
}
