//! Online-learning equivalence suite: a full-window streaming refit must
//! be bit-identical to cold training on the same window.
//!
//! This is the online analogue of the warm-vs-cold model-artifact proof:
//! the serving path may only hot-swap a refit candidate because nothing
//! about *how* the window's records arrived — hour-interleaved, shard by
//! shard, one shard or four — can change the artifact the trainer
//! produces. The only permitted difference is the `created_unix`
//! wall-clock stamp, which both sides normalize before comparing bytes.

use dds_chaos::{ChaosEngine, ChaosSpec};
use dds_core::{
    Analysis, AnalysisConfig, CategorizationConfig, OnlineTrainer, RefitPath, TrainedModel,
    TrainingContext,
};
use dds_monitor::shard_for;
use dds_smartsim::stream::hour_ordered;
use dds_smartsim::{DriveId, FleetConfig, HealthRecord, StreamingFleet};

fn config() -> AnalysisConfig {
    AnalysisConfig {
        categorization: CategorizationConfig { run_svc: false, ..Default::default() },
        ..Default::default()
    }
}

fn ctx(seed: u64) -> TrainingContext {
    TrainingContext { seed, scale: "test".to_string(), git_sha: String::new() }
}

/// Canonical byte form of a model with the wall-clock stamp normalized
/// out (the one field two training runs of the same window legitimately
/// disagree on).
fn stamped_bytes(mut model: TrainedModel) -> Vec<u8> {
    model.meta.created_unix = 0;
    model.to_bytes().expect("model serializes")
}

/// Re-orders an hour-ordered stream the way an N-shard ingest tier would
/// consume it: shard 0's records first (in arrival order), then shard
/// 1's, and so on — the most adversarial legal reordering, since a
/// drive's history never spans shards.
fn sharded_order(
    records: &[(DriveId, HealthRecord)],
    shards: usize,
) -> Vec<(DriveId, HealthRecord)> {
    let mut out = Vec::with_capacity(records.len());
    for shard in 0..shards {
        out.extend(records.iter().filter(|(drive, _)| shard_for(*drive, shards) == shard).cloned());
    }
    out
}

#[test]
fn streaming_refit_is_bit_identical_to_cold_training() {
    for seed in [7u64, 23, 1051] {
        let mut stream = StreamingFleet::new(FleetConfig::test_scale().with_seed(seed));
        let window = stream.next_epoch();
        let (_, cold_model) =
            Analysis::new(config()).train(&window, &ctx(seed)).expect("cold training succeeds");
        let cold_bytes = stamped_bytes(cold_model);

        let records = hour_ordered(&window);
        for shards in [1usize, 4] {
            let mut trainer = OnlineTrainer::new(config());
            trainer.begin_epoch(&window);
            trainer.observe_batch(&sharded_order(&records, shards));
            assert_eq!(trainer.window_records(), records.len() as u64);

            let outcome = trainer.refit(&ctx(seed)).expect("streaming refit succeeds");
            assert!(outcome.quality.is_none(), "a clean window must skip the quality gate");
            assert_eq!(outcome.expected_disorder(), 0.0);
            assert_eq!(
                stamped_bytes(outcome.model),
                cold_bytes,
                "seed {seed}, {shards} shard(s): refit artifact must match cold training byte \
                 for byte"
            );
        }
    }
}

/// Mean per-group training RMSE — the model-level predictive-quality
/// fingerprint the tolerance gate compares (robust to the warm path
/// keeping the prior `k` while a cold elbow sweep may pick another).
fn mean_rmse(model: &TrainedModel) -> f64 {
    assert!(!model.groups.is_empty(), "a trained model has groups");
    model.groups.iter().map(|g| g.rmse).sum::<f64>() / model.groups.len() as f64
}

/// The pinned equivalence budget for the incremental path, as an
/// *absolute* RMSE inflation over cold training: warm-started K-means
/// may settle in a different local optimum and the warm trees fit on a
/// good-thinned train split, so the artifact is not byte-comparable —
/// the gate is on predictive quality instead. 0.02 RMSE over the
/// `[-1, 1]` target range is a 1% error-rate budget (Table III terms);
/// the observed gaps across the chaos seeds are ≤ 0.011.
const INCREMENTAL_RMSE_TOLERANCE: f64 = 0.02;

#[test]
fn incremental_refit_under_chaos_converges_to_cold_training_within_tolerance() {
    // The property ISSUE 10 pins: for every chaos seed and shard count,
    // a warm-started incremental refit on the *next* epoch — fed a
    // reorder/dup-corrupted stream — either converges to the cold-train
    // artifact's predictive quality within `INCREMENTAL_RMSE_TOLERANCE`,
    // or falls back to epoch replay (in which case it *is* the cold
    // artifact and the fallback is visible in the outcome path).
    let spec: ChaosSpec = "reorder=0.2,dup=0.3".parse().expect("spec parses");
    for seed in [7u64, 23, 1051] {
        let mut stream = StreamingFleet::new(FleetConfig::test_scale().with_seed(seed));
        let first = stream.next_epoch();
        let second = stream.next_epoch();

        let analysis = Analysis::new(config());
        let (_, prior) = analysis.train(&first, &ctx(seed)).expect("prior epoch trains");
        let (_, cold) = analysis.train(&second, &ctx(seed)).expect("cold reference trains");
        let cold_rmse = mean_rmse(&cold);
        let cold_bytes = stamped_bytes(cold);

        let engine = ChaosEngine::new(spec.clone(), seed);
        let (corrupted, faults) = engine.corrupt_stream(0, &hour_ordered(&second));
        assert!(faults.total() > 0, "the chaos spec must actually fire");

        for shards in [1usize, 4] {
            let mut trainer = OnlineTrainer::new(config());
            trainer.begin_epoch(&second);
            trainer.observe_batch(&sharded_order(&corrupted, shards));

            let outcome =
                trainer.refit_with(&ctx(seed), Some(&prior)).expect("incremental refit succeeds");
            assert!(outcome.live_rmse.is_some(), "a prior unlocks the live RMSE channel");
            assert!(outcome.live_rmse.unwrap().is_finite());
            assert!(outcome.prior_training_rmse.unwrap().is_finite());
            match outcome.path {
                RefitPath::Incremental => {
                    let refit_rmse = mean_rmse(&outcome.model);
                    let gap = refit_rmse - cold_rmse;
                    assert!(
                        gap <= INCREMENTAL_RMSE_TOLERANCE,
                        "seed {seed}, {shards} shard(s): incremental refit RMSE {refit_rmse:.4} \
                         vs cold {cold_rmse:.4} (inflation {gap:+.4}) exceeds the tolerance"
                    );
                }
                RefitPath::Fallback => {
                    // The fallback leg *is* epoch replay on the sanitized
                    // window; quality-identical to the replay path.
                    assert_eq!(
                        stamped_bytes(outcome.model.clone()),
                        cold_bytes,
                        "seed {seed}, {shards} shard(s): fallback must be the replay artifact"
                    );
                }
                RefitPath::Replay => {
                    panic!("a refit with a prior never takes the bare replay path")
                }
            }
        }
    }
}

#[test]
fn window_cap_bounds_trainer_memory_across_epochs() {
    // With a per-drive cap, trainer memory stays O(drives × cap) no
    // matter how many epochs stream through, eviction is visible in the
    // window accounting, and the capped (trailing-window) refit still
    // produces a deployable artifact.
    const CAP: usize = 48;
    let seed = 7u64;
    let mut stream = StreamingFleet::new(FleetConfig::test_scale().with_seed(seed));
    let mut trainer = OnlineTrainer::new(config()).with_window_cap(CAP);

    for epoch in 0..3 {
        let window = stream.next_epoch();
        let bound = window.drives().len() * CAP;
        trainer.begin_epoch(&window);
        trainer.observe_batch(&hour_ordered(&window));
        assert!(
            trainer.retained_records() <= bound,
            "epoch {epoch}: {} retained records exceed the {bound} cap bound",
            trainer.retained_records()
        );
        assert!(
            trainer.window_evicted() > 0,
            "epoch {epoch}: retention windows are longer than the cap, eviction must fire"
        );
        assert_eq!(
            trainer.window_records(),
            hour_ordered(&window).len() as u64,
            "eviction drops retained samples, not observation counts"
        );
        let outcome = trainer.refit(&ctx(seed)).expect("capped refit succeeds");
        assert!(!outcome.model.groups.is_empty(), "capped refit still yields signatures");
    }
    assert_eq!(trainer.epochs_begun(), 3);
    assert_eq!(trainer.refits(), 3);
}

#[test]
fn refit_window_slides_with_epochs() {
    // Two consecutive epochs refit to two *different* models (the window
    // really slides), and replaying epoch 2 alone matches a cold train on
    // epoch 2 — the window holds exactly one epoch, no residue.
    let seed = 7u64;
    let mut stream = StreamingFleet::new(FleetConfig::test_scale().with_seed(seed));
    let first = stream.next_epoch();
    let second = stream.next_epoch();

    let mut trainer = OnlineTrainer::new(config());
    trainer.begin_epoch(&first);
    trainer.observe_batch(&hour_ordered(&first));
    let refit_first = trainer.refit(&ctx(seed)).expect("epoch 1 refit");

    trainer.begin_epoch(&second);
    trainer.observe_batch(&hour_ordered(&second));
    let refit_second = trainer.refit(&ctx(seed)).expect("epoch 2 refit");

    let (_, cold_second) =
        Analysis::new(config()).train(&second, &ctx(seed)).expect("cold training succeeds");

    let first_bytes = stamped_bytes(refit_first.model);
    let second_bytes = stamped_bytes(refit_second.model);
    assert_ne!(first_bytes, second_bytes, "consecutive epochs must refit differently");
    assert_eq!(second_bytes, stamped_bytes(cold_second), "no residue from the previous window");
}
