//! Integration tests for the extension surface: CSV I/O, lead-time
//! evaluation, alternative clustering and prediction methods, and the
//! consumer-fleet transfer check.

use dds::prelude::*;
use dds_cluster::adjusted_rand_index;
use dds_cluster::hierarchical::{Dendrogram, Linkage};
use dds_core::knn::KnnRegressor;
use dds_core::leadtime::{detector_roc, lead_times, LeadTimeConfig};
use dds_core::CategorizationConfig;
use dds_smartsim::io::{read_csv, write_csv};

fn config_without_svc() -> AnalysisConfig {
    AnalysisConfig {
        categorization: CategorizationConfig { run_svc: false, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn csv_roundtrip_preserves_analysis_results() {
    let original = FleetSimulator::new(FleetConfig::test_scale().with_seed(5_005)).run();
    let mut buffer = Vec::new();
    write_csv(&original, &mut buffer).unwrap();
    let loaded = read_csv(buffer.as_slice()).unwrap();

    let a = Analysis::new(config_without_svc()).run(&original).unwrap();
    let b = Analysis::new(config_without_svc()).run(&loaded).unwrap();
    assert_eq!(a.categorization.num_groups(), b.categorization.num_groups());
    assert_eq!(a.categorization.assignments(), b.categorization.assignments());
    for (ga, gb) in a.degradation.iter().zip(&b.degradation) {
        assert_eq!(ga.windows, gb.windows);
        assert_eq!(ga.dominant_form, gb.dominant_form);
    }
}

#[test]
fn lead_times_track_degradation_windows() {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(5_006)).run();
    let report = Analysis::new(config_without_svc()).run(&dataset).unwrap();
    let leads = lead_times(
        &dataset,
        &report.categorization,
        &report.prediction,
        &LeadTimeConfig::default(),
    )
    .unwrap();
    // Lead times per group are ordered like the degradation windows:
    // G2 >> G3 > G1.
    let lead = |g: usize| leads[g].median_lead_hours().unwrap_or(0.0);
    assert!(lead(1) > lead(2), "G2 {} vs G3 {}", lead(1), lead(2));
    assert!(lead(2) >= lead(0), "G3 {} vs G1 {}", lead(2), lead(0));
}

#[test]
fn detector_roc_is_usable_from_facade() {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(5_007)).run();
    let roc = detector_roc(&dataset, &[0.01, 0.1]).unwrap();
    assert_eq!(roc.len(), 2);
    assert!(roc[1].rank_sum.detection_rate >= roc[0].rank_sum.detection_rate);
}

#[test]
fn hierarchical_clustering_agrees_with_kmeans_grouping() {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(5_008)).run();
    let report = Analysis::new(config_without_svc()).run(&dataset).unwrap();
    let points = report.failure_records.scaled_features().to_vec();
    let dendrogram = Dendrogram::fit(&points, Linkage::Average).unwrap();
    let labels = dendrogram.cut(3).unwrap();
    let ari = adjusted_rand_index(report.categorization.assignments(), &labels).unwrap();
    assert!(ari > 0.9, "hierarchical vs kmeans ARI {ari}");
}

#[test]
fn knn_predicts_degradation_comparably_to_the_tree() {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(5_009)).run();
    let report = Analysis::new(config_without_svc()).run(&dataset).unwrap();
    // Label a few Group 2 records with the signature and check k-NN ranks
    // them correctly (monotone in time-to-failure).
    let group = &report.categorization.groups()[1];
    let drive = dataset.drive(group.centroid_drive).unwrap();
    let n = drive.records().len();
    let xs: Vec<Vec<f64>> =
        drive.records().iter().map(|r| dataset.normalize_record(r).to_vec()).collect();
    let signature = report.prediction.groups[1].signature;
    let ys: Vec<f64> =
        (0..n).map(|i| signature.evaluate((n - 1 - i) as f64).clamp(-1.0, 1.0)).collect();
    let knn = KnnRegressor::fit(xs.clone(), ys, 5).unwrap();
    let early = knn.predict(&xs[5]).unwrap();
    let late = knn.predict(&xs[n - 5]).unwrap();
    assert!(late < early, "late-life prediction {late} must be below early {early}");
}

#[test]
fn consumer_fleet_transfers_without_retuning() {
    let dataset = FleetSimulator::new(FleetConfig::consumer_scale().with_seed(5_010)).run();
    let report = Analysis::new(config_without_svc()).run(&dataset).unwrap();
    assert_eq!(report.categorization.num_groups(), 3);
    let ari =
        report.categorization.ground_truth_agreement(&dataset, &report.failure_records).unwrap();
    assert!(ari > 0.9, "consumer-fleet ARI {ari}");
    // The shifted mix is recovered: head failures are the plurality.
    let fractions: Vec<f64> =
        report.categorization.groups().iter().map(|g| g.population_fraction).collect();
    assert!((fractions[2] - 0.40).abs() < 0.1, "fractions {fractions:?}");
}
