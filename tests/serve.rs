//! Integration tests of serving mode: a real `dds serve` loop (in
//! process) answering scrapes over raw TCP while ingesting, the watchdog
//! flipping `/healthz`, malformed-request resilience, hot-swap promotion
//! under concurrent load, and bit-for-bit Sequential-vs-Threads(4)
//! determinism with the server enabled.
//!
//! The serve loop writes the process-global metrics registry and trace
//! facade, so every test takes `SERVE_LOCK` first.

use dds_cli::serve::{serve, ServeOptions};
use dds_cli::{parse, run, ChaosOptions};
use dds_core::{Analysis, AnalysisConfig, TrainingContext};
use dds_smartsim::{FleetConfig, FleetSimulator};
use dds_stats::par::Parallelism;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static SERVE_LOCK: Mutex<()> = Mutex::new(());

fn serve_lock() -> MutexGuard<'static, ()> {
    SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_options() -> ServeOptions {
    ServeOptions {
        scale: "test".to_string(),
        seed: 77,
        threads: 1,
        listen: "127.0.0.1:0".to_string(),
        epochs: 0, // run until the test flips the stop flag
        tick_ms: 1,
        ..ServeOptions::default()
    }
}

/// A minimal HTTP GET over raw TCP: returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    raw_roundtrip(stream, &format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n"))
}

/// A body-less HTTP POST over raw TCP: returns (status, body). The
/// promotion endpoint rendezvouses with the serve loop, so the read
/// timeout is generous.
fn http_post(addr: SocketAddr, path: &str) -> (u16, String) {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10)).expect("connect");
    raw_roundtrip(
        stream,
        &format!("POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n"),
    )
}

/// Extracts the `"generation": N` counter from a `/model` or promotion
/// reply.
fn generation_of(body: &str) -> u64 {
    body.split("\"generation\": ")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .unwrap_or_else(|| panic!("no generation counter in {body:?}"))
}

fn raw_roundtrip(mut stream: TcpStream, request: &str) -> (u16, String) {
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(request.as_bytes()).expect("send request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    let status: u16 = reply
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {reply:?}"));
    let body = reply.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Polls `path` until `pred` accepts the response or the deadline passes.
fn poll_until(
    addr: SocketAddr,
    path: &str,
    timeout: Duration,
    pred: impl Fn(u16, &str) -> bool,
) -> (u16, String) {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, body) = http_get(addr, path);
        if pred(status, &body) {
            return (status, body);
        }
        assert!(Instant::now() < deadline, "timed out polling {path}; last: {status} {body}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Checks the Prometheus text exposition grammar the registry's
/// `to_prometheus()` promises: comment lines start with `#`, every sample
/// line is `name[{labels}] value` with a metric-identifier name and a
/// float (or `+Inf`) value.
fn assert_prometheus_format(body: &str) {
    let mut samples = 0usize;
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line:?}"));
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparsable sample value in {line:?}"
        );
        let name = &series[..series.find('{').unwrap_or(series.len())];
        assert!(!name.is_empty(), "empty metric name in {line:?}");
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        samples += 1;
    }
    assert!(samples > 0, "no samples in exposition");
}

/// Runs the serve loop on a background thread, hands its bound address to
/// `body`, then stops the loop and returns its summary output.
fn with_serve_loop(options: ServeOptions, body: impl FnOnce(SocketAddr)) -> String {
    let stop = AtomicBool::new(false);
    let (addr_tx, addr_rx) = mpsc::channel();
    let mut summary = None;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            serve(&options, &stop, None, move |addr| addr_tx.send(addr).unwrap())
                .expect("serve loop")
        });
        // A panicking body must still flip the stop flag, or the scope
        // would join the endless serve thread forever and turn an
        // assertion failure into a hang.
        let body_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let addr = addr_rx.recv_timeout(Duration::from_secs(10)).expect("server bound");
            body(addr);
        }));
        stop.store(true, Ordering::SeqCst);
        let serve_result = handle.join().expect("serve thread");
        if let Err(panic) = body_result {
            std::panic::resume_unwind(panic);
        }
        summary = Some(serve_result);
    });
    summary.expect("serve summary")
}

#[test]
fn concurrent_scrapes_succeed_mid_ingest_and_abuse_does_not_kill_the_server() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    let summary = with_serve_loop(test_options(), |addr| {
        // Readiness flips once the bundle is trained.
        poll_until(addr, "/readyz", Duration::from_secs(60), |s, _| s == 200);
        // Ingest must eventually emit alerts (the simulated fleet contains
        // failing drives).
        let (_, metrics) = poll_until(addr, "/metrics", Duration::from_secs(60), |s, b| {
            s == 200
                && b.lines().any(|l| {
                    l.strip_prefix("dds_monitor_alerts_total ")
                        .and_then(|v| v.parse::<f64>().ok())
                        .is_some_and(|v| v > 0.0)
                })
        });
        assert_prometheus_format(&metrics);
        assert!(metrics.contains("dds_build_info{"), "build info labels exported");
        assert!(metrics.contains("dds_monitor_ingest_seconds_p99"), "derived p99 gauge");
        assert!(metrics.contains("dds_uptime_seconds"));

        // Four clients hammer /metrics mid-ingest: zero non-200s allowed.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..10 {
                        let (status, body) = http_get(addr, "/metrics");
                        assert_eq!(status, 200, "scrape failed mid-ingest");
                        assert_prometheus_format(&body);
                    }
                });
            }
        });

        // Abuse: malformed request line, unknown path, bogus query —
        // then the server still answers normal scrapes.
        let garbage = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
        assert_eq!(raw_roundtrip(garbage, "BLARG\r\n\r\n").0, 400);
        assert_eq!(http_get(addr, "/definitely-not-a-route").0, 404);
        assert_eq!(http_get(addr, "/alerts?n=banana").0, 400);
        let (status, json) = http_get(addr, "/alerts?n=3");
        assert_eq!(status, 200);
        dds_obs::json::validate(&json).expect("alerts JSON");
        let (status, json) = http_get(addr, "/metrics.json");
        assert_eq!(status, 200);
        dds_obs::json::validate(&json).expect("metrics JSON");
        let (status, json) = http_get(addr, "/profile");
        assert_eq!(status, 200);
        dds_obs::json::validate(&json).expect("profile JSON");

        // The dashboard endpoints are live even on an unsharded serve:
        // the flight recorder journals the streaming epochs and the
        // time-series store answers with fleet windows plus the single
        // shard's series.
        let (status, trace) = http_get(addr, "/trace?n=5");
        assert_eq!(status, 200);
        assert!(!trace.is_empty(), "streaming epochs journal batch spans");
        for line in trace.lines() {
            dds_obs::json::validate(line).expect("trace JSON-line");
        }
        assert!(trace.contains("\"source\": \"stream\""), "{trace}");
        let (status, timeseries) = http_get(addr, "/timeseries");
        assert_eq!(status, 200);
        dds_obs::json::validate(&timeseries).expect("timeseries JSON");
        assert!(timeseries.contains("\"fleet\""), "{timeseries}");
        assert!(timeseries.contains("\"shard\": 0"), "{timeseries}");

        // The declared Content-Type actually crosses the wire.
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        stream.write_all(b"GET /metrics.json HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        let headers = reply.split_once("\r\n\r\n").map(|(h, _)| h).unwrap_or(&reply);
        assert!(
            headers.contains("Content-Type: application/json"),
            "/metrics.json wire headers: {headers}"
        );

        assert_eq!(http_get(addr, "/metrics").0, 200, "server survived the abuse");
    });

    assert!(summary.contains("records ingested"), "summary reports ingest volume: {summary}");
    assert!(summary.contains("alerts emitted"), "summary reports alerts: {summary}");
}

#[test]
fn healthz_degrades_when_the_watchdog_trips_the_error_budget() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    with_serve_loop(test_options(), |addr| {
        poll_until(addr, "/readyz", Duration::from_secs(60), |s, _| s == 200);
        let (status, body) = http_get(addr, "/healthz");
        assert_eq!(status, 200, "healthy while ingest behaves: {body}");
        assert!(body.contains("\"ok\""));

        // Blow the 1% ingest-error budget: the next watchdog evaluation
        // (one per ingested fleet-hour) must degrade /healthz.
        dds_obs::metrics::global().counter("dds_serve_ingest_errors_total").add(1_000_000);
        let (_, degraded) = poll_until(addr, "/healthz", Duration::from_secs(60), |s, _| s == 503);
        assert!(degraded.contains("degraded"), "reason surfaced: {degraded}");
        assert!(degraded.contains("error"), "error-budget rule named: {degraded}");
    });
}

#[test]
fn chaos_epochs_degrade_healthz_on_quarantine_budget_and_recovery_follows() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    // Corrupt only the first two epochs with duplicated hours, which the
    // quality gate quarantines wholesale: ~1/3 of offered records, far
    // past the watchdog's 10% quarantine budget. Duplicates sit at their
    // original hour, so the serve loop's per-fleet-hour pacing tick is
    // unchanged (out-of-order faults would multiply hour transitions and
    // stretch the corrupt phase past any sane poll deadline). Later
    // epochs stream clean, so the breach must age out of the 30s SLO
    // window.
    let options = ServeOptions {
        chaos: ChaosOptions { spec: "dup=0.5".parse().unwrap(), seed: 1051 },
        chaos_epochs: 2,
        ..test_options()
    };

    let summary = with_serve_loop(options, |addr| {
        poll_until(addr, "/readyz", Duration::from_secs(60), |s, _| s == 200);

        // The quarantine budget trips while the corrupt epochs stream.
        let (_, degraded) = poll_until(addr, "/healthz", Duration::from_secs(60), |s, _| s == 503);
        assert!(degraded.contains("degraded"), "reason surfaced: {degraded}");
        assert!(degraded.contains("quarantine budget"), "budget rule named: {degraded}");

        // Degraded health is a signal, not an outage: every data endpoint
        // keeps answering 200 mid-corruption.
        for path in ["/metrics", "/metrics.json", "/alerts?n=5", "/readyz", "/profile"] {
            let (status, _) = http_get(addr, path);
            assert_eq!(status, 200, "{path} must not fail under chaos");
        }
        let (_, metrics) = http_get(addr, "/metrics");
        assert_prometheus_format(&metrics);
        assert!(metrics.contains("dds_records_quarantined_total"), "{metrics}");
        assert!(metrics.contains("dds_chaos_faults_injected_total"), "{metrics}");

        // Recovery: clean epochs push the corrupt samples out of the
        // watchdog window and /healthz flips back on its own.
        let (_, healthy) = poll_until(addr, "/healthz", Duration::from_secs(120), |s, _| s == 200);
        assert!(healthy.contains("\"ok\""), "recovered health body: {healthy}");
    });

    assert!(summary.contains("records quarantined:"), "summary reports quarantine: {summary}");
    assert!(
        summary.contains("chaos dup=0.5 (seed 1051) applied to the first 2 epochs"),
        "summary reports the chaos window: {summary}"
    );
}

/// Runs a bounded serve loop to completion and returns its summary with
/// the ephemeral listen address masked (the only run-to-run variation).
fn masked_summary(options: &ServeOptions) -> String {
    let stop = AtomicBool::new(false);
    let addr_cell = std::cell::Cell::new(None);
    let summary =
        serve(options, &stop, None, |addr| addr_cell.set(Some(addr))).expect("bounded serve run");
    let addr = addr_cell.get().expect("server bound");
    summary.replace(&addr.to_string(), "ADDR")
}

#[test]
fn warm_start_serves_bit_identically_to_a_cold_start() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    // Train the artifact exactly the way the cold serve path trains:
    // same scale, seed and parallelism.
    let base = ServeOptions { epochs: 2, tick_ms: 0, ..test_options() };
    let par = Parallelism::from_thread_count(base.threads);
    let training =
        FleetSimulator::new(FleetConfig::test_scale().with_seed(base.seed).with_parallelism(par))
            .run();
    let ctx =
        TrainingContext { seed: base.seed, scale: base.scale.clone(), git_sha: String::new() };
    let config = AnalysisConfig { parallelism: par, ..Default::default() };
    let (_, model) = Analysis::new(config).train(&training, &ctx).expect("training");
    let mut artifact = std::env::temp_dir();
    artifact.push(format!("dds_serve_warm_{}.dds", std::process::id()));
    model.save(&artifact).expect("save artifact");

    // Cold (train in-process) and warm (load the artifact) runs must be
    // byte-identical once the ephemeral port is masked.
    let cold = masked_summary(&base);
    let warm = masked_summary(&ServeOptions { model: Some(artifact.clone()), ..base.clone() });
    assert!(cold.contains("2 epochs"), "bounded run completed: {cold}");
    assert_eq!(cold, warm, "warm start must not perturb serving output");

    // A warm server exposes the artifact's provenance on /model and the
    // warm-start gauges on /metrics, and reaches readiness.
    let options = ServeOptions { model: Some(artifact.clone()), ..test_options() };
    with_serve_loop(options, |addr| {
        poll_until(addr, "/readyz", Duration::from_secs(60), |s, _| s == 200);
        let (status, provenance) = http_get(addr, "/model");
        assert_eq!(status, 200);
        dds_obs::json::validate(&provenance).expect("provenance JSON");
        assert!(provenance.contains("dds-model"), "provenance: {provenance}");
        assert!(
            provenance.contains(&dds_obs::json::escape(&artifact.display().to_string())),
            "provenance names the artifact: {provenance}"
        );
        let (_, metrics) = http_get(addr, "/metrics");
        assert!(metrics.contains("dds_model_load_seconds"), "{metrics}");
        assert!(metrics.contains("dds_model_age_seconds"), "{metrics}");
    });
    let _ = std::fs::remove_file(&artifact);

    // A missing artifact is a clean startup error, not a fallback retrain.
    let mut missing = std::env::temp_dir();
    missing.push("dds_serve_warm_missing.dds");
    let bad = ServeOptions { model: Some(missing), ..test_options() };
    let err = serve(&bad, &AtomicBool::new(false), None, |_| {}).expect_err("must not start");
    assert!(err.to_string().contains("cannot load model"), "{err}");
}

#[test]
fn cold_start_publishes_in_process_provenance() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    with_serve_loop(test_options(), |addr| {
        // Before training completes /model answers 503; once ready it
        // reports the in-process training run.
        poll_until(addr, "/readyz", Duration::from_secs(60), |s, _| s == 200);
        let (status, provenance) =
            poll_until(addr, "/model", Duration::from_secs(60), |s, _| s == 200);
        assert_eq!(status, 200);
        dds_obs::json::validate(&provenance).expect("provenance JSON");
        assert!(provenance.contains("trained in-process"), "provenance: {provenance}");
        assert!(provenance.contains("\"seed\":\"77\""), "provenance: {provenance}");
    });
}

/// Like [`masked_summary`], but runs the bounded serve loop on a
/// background thread so `body` can act on the live server while the
/// epoch budget plays out. The loop exits on its own epoch budget; the
/// stop flag is only forced when `body` panics (so a failed assertion
/// cannot hang the join).
fn masked_summary_with(options: &ServeOptions, body: impl FnOnce(SocketAddr)) -> String {
    let stop = AtomicBool::new(false);
    let (addr_tx, addr_rx) = mpsc::channel();
    let mut out = None;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            serve(options, &stop, None, move |addr| addr_tx.send(addr).unwrap())
                .expect("bounded serve run")
        });
        let body_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let addr = addr_rx.recv_timeout(Duration::from_secs(10)).expect("server bound");
            body(addr);
            addr
        }));
        if body_result.is_err() {
            stop.store(true, Ordering::SeqCst);
        }
        let summary = handle.join().expect("serve thread");
        match body_result {
            Ok(addr) => out = Some(summary.replace(&addr.to_string(), "ADDR")),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    });
    out.expect("serve summary")
}

/// Drops the online-learning summary lines (present exactly when refits
/// or promotions happened) so promotion runs compare against baselines.
fn without_online_lines(summary: &str) -> String {
    summary
        .lines()
        .filter(|l| !l.starts_with("online learning:") && !l.starts_with("drift:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn hot_swap_torture_identical_promotion_never_perturbs_the_alert_stream() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    // Baseline: the same bounded run with no promotions at all.
    let options = ServeOptions { epochs: 2, tick_ms: 1, ..test_options() };
    let baseline = masked_summary(&options);
    assert!(baseline.contains("2 epochs"), "bounded baseline completed: {baseline}");

    dds_obs::metrics::global().reset();

    // Torture run: scrape threads hammer /metrics, /model and /alerts
    // while a promoter thread hot-swaps the serving model (no candidate
    // is soaking, so each promote re-publishes the same bytes). Zero
    // non-200s allowed anywhere, /model must never be torn, and its
    // generation counter must never move backwards.
    let torture = masked_summary_with(&options, |addr| {
        poll_until(addr, "/readyz", Duration::from_secs(60), |s, _| s == 200);
        std::thread::scope(|scope| {
            for path in ["/metrics", "/alerts?n=5", "/model"] {
                scope.spawn(move || {
                    let mut last_generation = 0;
                    for _ in 0..25 {
                        let (status, body) = http_get(addr, path);
                        assert_eq!(status, 200, "{path} failed mid-promotion: {body}");
                        if path == "/model" {
                            dds_obs::json::validate(&body).expect("/model JSON never torn");
                            let generation = generation_of(&body);
                            assert!(
                                generation >= last_generation,
                                "generation rewound {last_generation} -> {generation}"
                            );
                            last_generation = generation;
                        }
                    }
                });
            }
            scope.spawn(move || {
                let mut last_generation = 1;
                for _ in 0..5 {
                    let (status, body) = http_post(addr, "/model/promote");
                    assert_eq!(status, 200, "promotion failed: {body}");
                    assert!(body.contains("\"promoted\": \"serving\""), "{body}");
                    let generation = generation_of(&body);
                    assert!(
                        generation > last_generation,
                        "promotion generation must strictly increase \
                         ({last_generation} -> {generation}): {body}"
                    );
                    last_generation = generation;
                }
            });
        });
        // GET on the promote route stays a method error, and promotion
        // replies are well-formed JSON.
        assert_eq!(http_get(addr, "/model/promote").0, 405);
    });

    // Five hot swaps of identical bytes: the ingest/alert/quarantine
    // summary is byte-identical to the promotion-free baseline.
    assert_eq!(
        without_online_lines(&baseline),
        without_online_lines(&torture),
        "identical-model promotion must not perturb serving"
    );
    assert!(torture.contains("5 promotions"), "promotions counted: {torture}");
}

#[test]
fn refit_candidate_soaks_in_shadow_and_promotes_atomically() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    // Refit a candidate after every epoch; run until the test stops it.
    let options = ServeOptions { refit_every: 1, ..test_options() };
    with_serve_loop(options, |addr| {
        poll_until(addr, "/readyz", Duration::from_secs(60), |s, _| s == 200);

        // /drift publishes from the first ingested hour: drift always on,
        // no shadow or candidate before the first refit.
        let (_, drift) = poll_until(addr, "/drift", Duration::from_secs(60), |s, _| s == 200);
        dds_obs::json::validate(&drift).expect("drift JSON");
        assert!(drift.contains("\"drift\": {"), "{drift}");

        // After the first epoch the online trainer refits: the candidate's
        // provenance appears on /drift and the shadow scorer starts.
        let (_, drift) = poll_until(addr, "/drift", Duration::from_secs(120), |s, b| {
            s == 200 && b.contains("online refit (epoch")
        });
        assert!(drift.contains("\"shadow\": {"), "shadow scorer soaking: {drift}");

        let (status, model) = http_get(addr, "/model");
        assert_eq!(status, 200);
        assert_eq!(generation_of(&model), 1, "one generation before promotion: {model}");
        assert!(model.contains("trained in-process"), "{model}");

        // Promote the candidate: atomic hot-swap, generation bumps, and
        // /model now reports the refit provenance.
        let (status, reply) = http_post(addr, "/model/promote");
        assert_eq!(status, 200, "{reply}");
        assert!(reply.contains("\"promoted\": \"candidate\""), "{reply}");
        let promoted_generation = generation_of(&reply);
        assert!(promoted_generation >= 2, "{reply}");
        let (_, model) = poll_until(addr, "/model", Duration::from_secs(60), |s, b| {
            s == 200 && b.contains("online refit (epoch")
        });
        dds_obs::json::validate(&model).expect("promoted /model JSON");
        assert!(generation_of(&model) >= promoted_generation, "{model}");

        // The drift detector adopted the candidate's baseline.
        let (_, drift) = poll_until(addr, "/drift", Duration::from_secs(60), |s, b| {
            s == 200 && b.contains("\"baseline_swaps\": 1")
        });
        dds_obs::json::validate(&drift).expect("post-swap drift JSON");

        // The online-learning metric families are exported.
        let (_, metrics) = http_get(addr, "/metrics");
        for family in [
            "dds_drift_records_total",
            "dds_drift_score",
            "dds_shadow_batches_total",
            "dds_online_refits_total",
        ] {
            assert!(metrics.contains(family), "missing {family} in /metrics");
        }
    });
}

#[test]
fn pipeline_is_bit_for_bit_deterministic_with_the_server_enabled() {
    let _guard = serve_lock();
    dds_obs::metrics::global().reset();

    let output_of = |threads: usize, listen: Option<&str>| {
        let mut args = vec![
            "pipeline".to_string(),
            "--scale".to_string(),
            "test".to_string(),
            "--seed".to_string(),
            "1234".to_string(),
            "--threads".to_string(),
            threads.to_string(),
        ];
        if let Some(addr) = listen {
            args.push("--listen".to_string());
            args.push(addr.to_string());
        }
        run(parse(args).expect("parse")).expect("pipeline run")
    };

    let sequential = output_of(1, Some("127.0.0.1:0"));
    let threaded = output_of(4, Some("127.0.0.1:0"));
    let no_server = output_of(4, None);
    assert_eq!(sequential, threaded, "Sequential vs Threads(4) with server enabled");
    assert_eq!(threaded, no_server, "serving must not perturb results");
}
