//! Property-based tests on the core invariants: Eq. (1) normalization,
//! signature models, window extraction, clustering and tree behavior under
//! arbitrary inputs.

use dds_cluster::{KMeans, KMeansConfig};
use dds_regtree::{RegressionTree, TreeConfig};
use dds_stats::{
    deciles, euclidean, quantile, BoxplotSummary, Histogram, MinMaxScaler, SignatureForm,
    SignatureModel,
};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, len)
}

proptest! {
    #[test]
    fn normalization_roundtrips(rows in prop::collection::vec(finite_vec(4), 2..20)) {
        let scaler = MinMaxScaler::fit(&rows).unwrap();
        for row in &rows {
            let t = scaler.transform_row(row).unwrap();
            for (c, &norm) in t.iter().enumerate() {
                // Values stay in [-1, 1] and invert back.
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&norm));
                let back = scaler.inverse_value(c, norm);
                let range = scaler.maxs()[c] - scaler.mins()[c];
                if range > 0.0 {
                    prop_assert!((back - row[c]).abs() < 1e-6 * range.max(1.0));
                }
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(values in prop::collection::vec(-1e6..1e6f64, 1..64)) {
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = quantile(&values, i as f64 / 10.0).unwrap();
            prop_assert!(q >= prev - 1e-9);
            prev = q;
        }
        let d = deciles(&values).unwrap();
        for w in d.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
    }

    #[test]
    fn euclidean_is_a_metric(
        a in finite_vec(6),
        b in finite_vec(6),
        c in finite_vec(6),
    ) {
        let ab = euclidean(&a, &b).unwrap();
        let ba = euclidean(&b, &a).unwrap();
        let ac = euclidean(&a, &c).unwrap();
        let cb = euclidean(&c, &b).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
        prop_assert!(ab <= ac + cb + 1e-6 * (1.0 + ab));
        prop_assert_eq!(euclidean(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn signature_models_are_monotone_and_bounded(
        window in 1.0..500.0f64,
        steps in 2usize..50,
    ) {
        for form in [SignatureForm::Linear, SignatureForm::Quadratic, SignatureForm::Cubic] {
            let model = SignatureModel::new(form, window).unwrap();
            let mut prev = model.evaluate(0.0);
            prop_assert!((prev + 1.0).abs() < 1e-12);
            for i in 1..=steps {
                let t = window * i as f64 / steps as f64;
                let s = model.evaluate(t);
                prop_assert!(s >= prev - 1e-12, "{form}: s must rise with t");
                prop_assert!((-1.0..=1e-9).contains(&s));
                prev = s;
                // Inverse agrees.
                let back = model.time_before_failure(s).unwrap();
                prop_assert!((back - t).abs() < 1e-6 * window);
            }
        }
    }

    #[test]
    fn kmeans_assignments_are_nearest_centroid(
        points in prop::collection::vec(finite_vec(3), 6..40),
        k in 1usize..5,
    ) {
        prop_assume!(points.len() >= k);
        let result = KMeans::new(KMeansConfig::new(k).with_seed(9)).fit(&points).unwrap();
        for (p, &a) in points.iter().zip(result.assignments()) {
            let own = euclidean(p, &result.centroids()[a]).unwrap();
            for centroid in result.centroids() {
                let other = euclidean(p, centroid).unwrap();
                prop_assert!(own <= other + 1e-9);
            }
        }
        prop_assert_eq!(result.cluster_sizes().iter().sum::<usize>(), points.len());
    }

    #[test]
    fn regression_tree_predictions_stay_in_target_hull(
        ys in prop::collection::vec(-100.0..100.0f64, 10..80),
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let config = TreeConfig::default().with_min_samples_split(2).with_min_samples_leaf(1);
        let tree = RegressionTree::fit(&xs, &ys, &config).unwrap();
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for x in &xs {
            let p = tree.predict(x);
            prop_assert!((lo - 1e-9..=hi + 1e-9).contains(&p));
        }
    }

    #[test]
    fn histogram_conserves_counts(values in prop::collection::vec(-10.0..110.0f64, 0..200)) {
        let h = Histogram::from_values(0.0, 100.0, 10, &values).unwrap();
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.out_of_range(), h.total());
        prop_assert_eq!(h.total() as usize, values.len());
    }

    #[test]
    fn boxplot_invariants(values in prop::collection::vec(-1e4..1e4f64, 1..128)) {
        let b = BoxplotSummary::from_values(&values).unwrap();
        prop_assert!(b.min <= b.q1 && b.q1 <= b.median);
        prop_assert!(b.median <= b.q3 && b.q3 <= b.max);
        prop_assert!(b.lower_whisker >= b.min && b.upper_whisker <= b.max);
        prop_assert!(b.iqr() >= 0.0);
        prop_assert_eq!(b.count, values.len());
        // Outliers are genuinely outside the whiskers.
        for &o in &b.outliers {
            prop_assert!(o < b.lower_whisker || o > b.upper_whisker);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn window_extraction_is_bounded_and_normalized(seed in 0u64..500) {
        use dds_core::degradation::DegradationAnalyzer;
        use dds_smartsim::{FleetConfig, FleetSimulator};
        let config = FleetConfig::test_scale()
            .with_good_drives(10)
            .with_failed_drives(6)
            .with_seed(seed);
        let dataset = FleetSimulator::new(config).run();
        let analyzer = DegradationAnalyzer::default();
        for drive in dataset.failed_drives() {
            let a = analyzer.analyze_drive(&dataset, drive).unwrap();
            prop_assert!(a.window_hours >= 1);
            prop_assert!(a.window_hours < drive.records().len());
            prop_assert_eq!(*a.degradation.last().unwrap(), -1.0);
            prop_assert!(a.degradation.iter().all(|&s| (-1.0..=1e-9).contains(&s)));
            prop_assert!(a.best_rmse.is_finite());
        }
    }
}

// Observability invariants: the sliding-window time series must agree with
// a from-scratch recomputation — rates exactly, bucket-estimated quantiles
// within the log-scale histograms' factor-of-2 bucket resolution.
proptest! {
    #[test]
    fn window_rates_match_naive_recomputation(
        increments in prop::collection::vec(0u64..1_000, 2..20),
        window_s in 1u64..100,
    ) {
        use dds_obs::metrics::Registry;
        use dds_obs::timeseries::TimeSeriesStore;
        use std::time::Duration;

        let registry = Registry::new();
        let counter = registry.counter("prop_events_total");
        let store = TimeSeriesStore::new(64);
        // One sample every 3 s at t = 0, 3, 6, …
        let mut samples: Vec<(u64, u64)> = Vec::new();
        for (i, inc) in increments.iter().enumerate() {
            counter.add(*inc);
            let t = 3 * i as u64;
            store.push(Duration::from_secs(t), registry.snapshot());
            samples.push((t, counter.get()));
        }

        // Naive recomputation straight from the sample list: newest total
        // minus the total at the first sample inside the window, over the
        // actually-covered interval.
        let &(newest_t, newest_v) = samples.last().unwrap();
        let left_edge = newest_t.saturating_sub(window_s);
        let &(oldest_t, oldest_v) =
            samples.iter().find(|(t, _)| *t >= left_edge).unwrap();
        let naive = (newest_t > oldest_t)
            .then(|| (newest_v - oldest_v) as f64 / (newest_t - oldest_t) as f64);

        let window = Duration::from_secs(window_s);
        let rate = store.rate_per_sec("prop_events_total", window);
        match (naive, rate) {
            (Some(expected), Some(actual)) => {
                prop_assert!((actual - expected).abs() <= 1e-9 * expected.max(1.0));
                let per_min = store.rate_per_min("prop_events_total", window).unwrap();
                prop_assert!((per_min - 60.0 * expected).abs() <= 1e-7 * expected.max(1.0));
            }
            (None, None) => {}
            (expected, actual) => prop_assert!(false, "naive {expected:?} vs store {actual:?}"),
        }
    }

    #[test]
    fn windowed_quantiles_track_naive_order_statistics(
        old_values in prop::collection::vec(1e-5..10.0f64, 0..50),
        new_values in prop::collection::vec(1e-5..10.0f64, 1..50),
        decile in 1usize..=9,
    ) {
        use dds_obs::metrics::Registry;
        use dds_obs::timeseries::TimeSeriesStore;
        use std::time::Duration;

        let registry = Registry::new();
        let h = registry.histogram("prop_latency_seconds");
        for v in &old_values {
            h.observe(*v);
        }
        let store = TimeSeriesStore::new(8);
        store.push(Duration::from_secs(0), registry.snapshot());
        for v in &new_values {
            h.observe(*v);
        }
        store.push(Duration::from_secs(30), registry.snapshot());

        // Naive order statistic over ONLY the in-window observations, with
        // the same rank convention the bucket estimator uses
        // (rank = clamp(ceil(q·n), 1, n)).
        let q = decile as f64 / 10.0;
        let mut sorted = new_values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let naive = sorted[rank - 1];

        let est = store
            .window_quantile("prop_latency_seconds", Duration::from_secs(30), q)
            .unwrap();
        // Both the estimate (interpolated inside the bucket) and the naive
        // order statistic land in the same log-scale bucket (lo, 2·lo], so
        // they agree within the bucket resolution: a factor of 2 each way.
        prop_assert!(est > naive / 2.0 * (1.0 - 1e-12), "estimate {est} under half of naive {naive}");
        prop_assert!(est <= naive * 2.0 * (1.0 + 1e-12), "estimate {est} over 2x naive {naive}");

        let count = store
            .window_count("prop_latency_seconds", Duration::from_secs(30))
            .unwrap();
        prop_assert_eq!(count as usize, new_values.len());
    }
}

// Chaos-operator invariants: seeded fault injection must be bit-exact
// under replay, conserve records according to its own tally, collapse to
// the identity at rate zero, and never break the quality gate's
// `accepted + quarantined == ingested` accounting downstream.
mod chaos_support {
    use dds_smartsim::{DriveId, HealthRecord};

    /// An hour-major interleaved stream like `hour_ordered` produces, with
    /// distinct deterministic values in every attribute cell.
    pub fn synthetic_stream(drives: usize, hours: usize) -> Vec<(DriveId, HealthRecord)> {
        let mut out = Vec::with_capacity(drives * hours);
        for hour in 0..hours {
            for d in 0..drives {
                let mut values = [0.0f64; 12];
                for (i, v) in values.iter_mut().enumerate() {
                    *v = ((hour * 31 + d * 7 + i * 13) % 97) as f64 + 0.5;
                }
                out.push((DriveId(d as u32), HealthRecord { hour: hour as u32, values }));
            }
        }
        out
    }

    /// Bit-exact fingerprint of a stream (NaN-safe, unlike `PartialEq`).
    pub fn stream_bits(stream: &[(DriveId, HealthRecord)]) -> Vec<(u32, u32, [u64; 12])> {
        stream.iter().map(|(d, r)| (d.0, r.hour, r.values.map(f64::to_bits))).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chaos_replay_is_bit_exact(
        drop in 0.0..0.3f64,
        truncate in 0.0..0.3f64,
        nullattr in 0.0..0.1f64,
        sentinel in 0.0..0.1f64,
        dup in 0.0..0.3f64,
        reorder in 0.0..0.3f64,
        skew in 0.0..0.3f64,
        seed in 0u64..u64::MAX,
        salt in 0u64..4,
    ) {
        use chaos_support::{stream_bits, synthetic_stream};
        use dds_chaos::{ChaosEngine, ChaosSpec, FaultKind};

        let spec = ChaosSpec::none()
            .with_rate(FaultKind::Drop, drop).unwrap()
            .with_rate(FaultKind::Truncate, truncate).unwrap()
            .with_rate(FaultKind::NullAttr, nullattr).unwrap()
            .with_rate(FaultKind::Sentinel, sentinel).unwrap()
            .with_rate(FaultKind::Duplicate, dup).unwrap()
            .with_rate(FaultKind::Reorder, reorder).unwrap()
            .with_rate(FaultKind::Skew, skew).unwrap();
        let stream = synthetic_stream(5, 24);

        let engine = ChaosEngine::new(spec, seed);
        let (first, first_counts) = engine.corrupt_stream(salt, &stream);
        let (second, second_counts) = engine.corrupt_stream(salt, &stream);
        prop_assert_eq!(stream_bits(&first), stream_bits(&second));
        prop_assert_eq!(first_counts, second_counts);
    }

    #[test]
    fn chaos_tally_conserves_records(
        drop in 0.0..0.3f64,
        truncate in 0.0..0.3f64,
        dup in 0.0..0.3f64,
        reorder in 0.0..0.3f64,
        seed in 0u64..u64::MAX,
    ) {
        use chaos_support::synthetic_stream;
        use dds_chaos::{ChaosEngine, ChaosSpec, FaultKind};

        let spec = ChaosSpec::none()
            .with_rate(FaultKind::Drop, drop).unwrap()
            .with_rate(FaultKind::Truncate, truncate).unwrap()
            .with_rate(FaultKind::Duplicate, dup).unwrap()
            .with_rate(FaultKind::Reorder, reorder).unwrap();
        let stream = synthetic_stream(4, 30);

        let (corrupted, counts) = ChaosEngine::new(spec, seed).corrupt_stream(0, &stream);
        // Drop and truncate each remove exactly one record per fault,
        // duplicate adds one; every other operator edits in place.
        let expected = stream.len() as i64
            - counts.get(FaultKind::Drop) as i64
            - counts.get(FaultKind::Truncate) as i64
            + counts.get(FaultKind::Duplicate) as i64;
        prop_assert_eq!(corrupted.len() as i64, expected);
    }

    #[test]
    fn zero_rate_chaos_is_the_identity(
        seed in 0u64..u64::MAX,
        salt in 0u64..4,
        drives in 1usize..6,
        hours in 1usize..40,
    ) {
        use chaos_support::{stream_bits, synthetic_stream};
        use dds_chaos::{ChaosEngine, ChaosSpec};

        let stream = synthetic_stream(drives, hours);
        let engine = ChaosEngine::new(ChaosSpec::none(), seed);
        let (out, counts) = engine.corrupt_stream(salt, &stream);
        prop_assert_eq!(counts.total(), 0);
        prop_assert_eq!(stream_bits(&out), stream_bits(&stream));
    }

    #[test]
    fn quality_gate_accounting_survives_any_chaos(
        drop in 0.0..0.4f64,
        nullattr in 0.0..0.2f64,
        sentinel in 0.0..0.2f64,
        dup in 0.0..0.4f64,
        reorder in 0.0..0.4f64,
        skew in 0.0..0.4f64,
        seed in 0u64..u64::MAX,
    ) {
        use chaos_support::synthetic_stream;
        use dds_chaos::{ChaosEngine, ChaosSpec, FaultKind};
        use dds_core::quality::{FleetSanitizer, QualityPolicy};
        use std::collections::HashMap;

        let spec = ChaosSpec::none()
            .with_rate(FaultKind::Drop, drop).unwrap()
            .with_rate(FaultKind::NullAttr, nullattr).unwrap()
            .with_rate(FaultKind::Sentinel, sentinel).unwrap()
            .with_rate(FaultKind::Duplicate, dup).unwrap()
            .with_rate(FaultKind::Reorder, reorder).unwrap()
            .with_rate(FaultKind::Skew, skew).unwrap();
        let stream = synthetic_stream(5, 24);
        let (corrupted, _) = ChaosEngine::new(spec, seed).corrupt_stream(0, &stream);

        let mut sanitizer = FleetSanitizer::new(QualityPolicy::default());
        let mut last_hour: HashMap<u32, u32> = HashMap::new();
        let mut accepted = 0u64;
        for (drive, record) in &corrupted {
            if let Ok(clean) = sanitizer.admit(*drive, record) {
                accepted += 1;
                // Accepted records are finite and strictly chronological
                // per drive — exactly what `DriveProfile::new` demands.
                prop_assert!(clean.values.iter().all(|v| v.is_finite()));
                if let Some(&prev) = last_hour.get(&drive.0) {
                    prop_assert!(clean.hour > prev);
                }
                last_hour.insert(drive.0, clean.hour);
            }
        }
        let stats = *sanitizer.stats();
        prop_assert_eq!(stats.ingested, corrupted.len() as u64);
        prop_assert_eq!(stats.accepted, accepted);
        prop_assert_eq!(stats.accepted + stats.quarantined, stats.ingested);
    }
}
