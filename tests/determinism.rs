//! Reproducibility: identical seeds give bit-identical datasets and
//! analysis results; different seeds change the data but not the paper's
//! qualitative conclusions.

use dds::prelude::*;

#[test]
fn same_seed_same_dataset() {
    let a = FleetSimulator::new(FleetConfig::test_scale().with_seed(5)).run();
    let b = FleetSimulator::new(FleetConfig::test_scale().with_seed(5)).run();
    assert_eq!(a.num_records(), b.num_records());
    for (da, db) in a.drives().iter().zip(b.drives()) {
        assert_eq!(da.records(), db.records());
        assert_eq!(da.label(), db.label());
    }
}

#[test]
fn same_seed_same_analysis() {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(6)).run();
    let r1 = Analysis::new(AnalysisConfig::default()).run(&dataset).unwrap();
    let r2 = Analysis::new(AnalysisConfig::default()).run(&dataset).unwrap();
    assert_eq!(r1.categorization.assignments(), r2.categorization.assignments());
    for (a, b) in r1.prediction.groups.iter().zip(&r2.prediction.groups) {
        assert_eq!(a.rmse, b.rmse);
    }
    for (a, b) in r1.degradation.iter().zip(&r2.degradation) {
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.dominant_form, b.dominant_form);
    }
}

#[test]
fn different_seed_different_data_same_conclusions() {
    for seed in [11u64, 22, 33] {
        let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(seed)).run();
        let report = Analysis::new(AnalysisConfig::default()).run(&dataset).unwrap();
        assert_eq!(
            report.categorization.num_groups(),
            3,
            "seed {seed}: elbow {:?}",
            report.categorization.elbow()
        );
        // The linear form must dominate Group 2 for every seed.
        assert_eq!(
            report.degradation[1].dominant_form,
            dds_stats::SignatureForm::Linear,
            "seed {seed}"
        );
        // Group 1 stays near-quadratic, Group 3 higher-order than linear on
        // the centroid (per-drive votes can wobble at this tiny scale).
        assert!(report.degradation[0].dominant_form.order() >= 2, "seed {seed}");
    }
}

#[test]
fn save_load_predict_equals_train_predict() {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(6)).run();
    let ctx = TrainingContext { seed: 6, scale: "test".to_string(), git_sha: String::new() };
    let (report, model) = Analysis::new(AnalysisConfig::default()).train(&dataset, &ctx).unwrap();
    let reloaded = TrainedModel::from_bytes(&model.to_bytes().unwrap()).unwrap();
    assert_eq!(reloaded, model, "codec round-trip must be lossless");

    // The warm bundle scores a live fleet bit-identically to the cold one.
    let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(7)).run();
    let cold = ModelBundle::from_analysis(&dataset, &report);
    let warm = ModelBundle::from_trained(&reloaded).unwrap();
    for drive in live.drives() {
        for record in drive.records() {
            let n_cold = cold.normalize(record);
            let n_warm = warm.normalize(record);
            assert_eq!(n_cold.map(f64::to_bits), n_warm.map(f64::to_bits));
            let p_cold = cold.worst_prediction(&n_cold);
            let p_warm = warm.worst_prediction(&n_warm);
            assert_eq!(
                p_cold.map(|(g, v)| (g, v.to_bits())),
                p_warm.map(|(g, v)| (g, v.to_bits()))
            );
        }
    }
}

#[test]
fn mode_mix_is_exactly_reproducible() {
    // The largest-remainder allocation is deterministic, so the group
    // counts never drift between runs.
    let counts = FleetConfig::bench_scale().mode_counts();
    assert_eq!(counts, [258, 33, 142]); // the paper's exact Table II sizes
    let counts = FleetConfig::test_scale().with_failed_drives(60).mode_counts();
    assert_eq!(counts.iter().sum::<u32>(), 60);
}
