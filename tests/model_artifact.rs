//! Workspace-level tests of the model artifact subsystem: a saved,
//! reloaded model drives the monitor bit-for-bit like the in-memory model
//! it was saved from, and corrupted artifacts fail with typed errors —
//! never panics, never silent acceptance.

use dds::core::report;
use dds::prelude::*;
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("dds_model_artifact_{}_{name}", std::process::id()));
    path
}

fn train(seed: u64) -> (Dataset, dds::core::AnalysisReport, TrainedModel) {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(seed)).run();
    let ctx = TrainingContext { seed, scale: "test".to_string(), git_sha: String::new() };
    let (report, model) =
        Analysis::new(AnalysisConfig::default()).train(&dataset, &ctx).expect("training");
    (dataset, report, model)
}

/// Replays every live drive through a monitor built on `bundle` and
/// returns the rendered alert stream.
fn alert_stream(bundle: ModelBundle, live: &Dataset) -> Vec<String> {
    let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
    let mut alerts = Vec::new();
    for drive in live.drives() {
        alerts.extend(monitor.replay(drive.id(), drive.records()));
    }
    alerts.sort_by_key(|a| a.hour);
    alerts.iter().map(|a| a.to_string()).collect()
}

#[test]
fn saved_model_drives_the_monitor_bit_identically() {
    let (dataset, analysis, model) = train(41);
    let path = temp_path("roundtrip.dds");
    model.save(&path).expect("save artifact");
    let reloaded = TrainedModel::load(&path).expect("load artifact");
    let _ = std::fs::remove_file(&path);
    assert_eq!(reloaded, model, "artifact round-trip must be lossless");

    let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(42)).run();
    let cold = alert_stream(ModelBundle::from_analysis(&dataset, &analysis), &live);
    let warm = alert_stream(ModelBundle::from_trained(&reloaded).expect("warm bundle"), &live);
    assert!(!cold.is_empty(), "the live fleet must raise alerts");
    assert_eq!(cold, warm, "warm-start alert stream must match the cold one byte for byte");
}

#[test]
fn reloaded_model_renders_the_same_prediction_table() {
    let (_, analysis, model) = train(43);
    let reloaded = TrainedModel::from_bytes(&model.to_bytes().expect("encode")).expect("decode");
    assert_eq!(
        report::render_prediction_table(&reloaded.prediction_report()),
        report::render_prediction_table(&analysis.prediction),
        "Table III from the artifact must match the fresh analysis byte for byte"
    );
}

#[test]
fn corrupted_artifacts_fail_with_typed_errors() {
    let (_, _, model) = train(44);
    let bytes = model.to_bytes().expect("encode");

    // A flipped payload byte is a checksum mismatch.
    let mut flipped = bytes.clone();
    let last = flipped.len() - 2;
    flipped[last] ^= 0x40;
    assert!(matches!(TrainedModel::from_bytes(&flipped), Err(ModelError::ChecksumMismatch { .. })));

    // A future format version is rejected as unsupported.
    let text = String::from_utf8(bytes.clone()).expect("artifact is UTF-8");
    let versioned = text.replacen("\"format_version\":1", "\"format_version\":99", 1);
    assert!(matches!(
        TrainedModel::from_bytes(versioned.as_bytes()),
        Err(ModelError::UnsupportedVersion { found: 99, .. })
    ));

    // A truncated file is detected as truncated, at any cut point.
    for keep in [bytes.len() - 1, bytes.len() / 2] {
        assert!(matches!(
            TrainedModel::from_bytes(&bytes[..keep]),
            Err(ModelError::Truncated { .. })
        ));
    }

    // Garbage of every stripe is malformed — never a panic.
    for garbage in ["", "\n", "not json\n", "{\"magic\":\"wrong\"}\npayload"] {
        assert!(matches!(
            TrainedModel::from_bytes(garbage.as_bytes()),
            Err(ModelError::Malformed(_))
        ));
    }
}

#[test]
fn corruption_on_disk_is_caught_at_load_time() {
    let (_, _, model) = train(45);
    let path = temp_path("corrupt.dds");
    model.save(&path).expect("save artifact");
    let mut bytes = std::fs::read(&path).expect("read artifact");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).expect("rewrite corrupted");
    let err = TrainedModel::load(&path).expect_err("corrupted artifact must not load");
    assert!(
        matches!(err, ModelError::ChecksumMismatch { .. } | ModelError::Malformed(_)),
        "unexpected error class: {err}"
    );
    let _ = std::fs::remove_file(&path);

    // A missing file is a clean I/O error.
    assert!(matches!(TrainedModel::load(&temp_path("never-written.dds")), Err(ModelError::Io(_))));
}
