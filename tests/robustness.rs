//! Robustness: the pipeline must behave sensibly on fleets that differ
//! from the paper's — skewed failure mixes, tiny populations, heavy
//! censoring, and forced cluster counts.

use dds::prelude::*;
use dds_core::{AnalysisError, CategorizationConfig};

fn config_without_svc() -> AnalysisConfig {
    AnalysisConfig {
        categorization: CategorizationConfig { run_svc: false, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn single_mode_fleet_still_analyzes() {
    // Everything fails by bad sectors: clustering finds fewer groups, and
    // the analysis must not panic.
    let config = FleetConfig::test_scale()
        .with_failed_drives(30)
        .with_mode_fractions([0.0, 1.0, 0.0])
        .with_seed(404);
    let dataset = FleetSimulator::new(config).run();
    let report = Analysis::new(config_without_svc()).run(&dataset).unwrap();
    assert!(report.categorization.num_groups() >= 1);
    // Every drive is a bad-sector failure; at least one group must be
    // recognized as such.
    assert!(report
        .categorization
        .groups()
        .iter()
        .any(|g| g.failure_type == dds_core::FailureType::BadSector));
}

#[test]
fn tiny_fleet_analyzes() {
    let config =
        FleetConfig::test_scale().with_good_drives(40).with_failed_drives(12).with_seed(405);
    let dataset = FleetSimulator::new(config).run();
    let report = Analysis::new(config_without_svc()).run(&dataset).unwrap();
    assert_eq!(report.failure_records.len(), 12);
    assert!(!report.prediction.groups.is_empty());
}

#[test]
fn forced_k_changes_group_count_only() {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(406)).run();
    for k in [2usize, 4] {
        let mut config = config_without_svc();
        config.categorization.fixed_k = Some(k);
        let report = Analysis::new(config).run(&dataset).unwrap();
        assert_eq!(report.categorization.num_groups(), k);
        assert_eq!(report.degradation.len(), k);
        assert_eq!(report.prediction.groups.len(), k);
    }
}

#[test]
fn no_failed_drives_is_a_clean_error() {
    let dataset =
        FleetSimulator::new(FleetConfig::test_scale().with_failed_drives(0).with_seed(407)).run();
    match Analysis::new(config_without_svc()).run(&dataset) {
        Err(AnalysisError::UnsuitableDataset(msg)) => {
            assert!(msg.contains("failed"), "message: {msg}")
        }
        other => panic!("expected UnsuitableDataset, got {other:?}"),
    }
}

#[test]
fn heavy_censoring_shortens_windows_but_keeps_groups() {
    // Almost every failed drive is censored early.
    let mut config = FleetConfig::test_scale().with_seed(408);
    config.full_profile_fraction = 0.05;
    let dataset = FleetSimulator::new(config).run();
    let report = Analysis::new(config_without_svc()).run(&dataset).unwrap();
    assert_eq!(report.categorization.num_groups(), 3);
    assert!(report.profile_durations.fraction_full_20_days < 0.3);
}

#[test]
fn skewed_mix_recovers_proportions() {
    let config = FleetConfig::test_scale()
        .with_failed_drives(60)
        .with_mode_fractions([0.2, 0.4, 0.4])
        .with_seed(409);
    let dataset = FleetSimulator::new(config).run();
    // Pin k = 3: the elbow heuristic is tuned for the paper's mix and may
    // hesitate between 3 and 4 on unusual mixes; proportion recovery is
    // what this test checks.
    let mut analysis_config = config_without_svc();
    analysis_config.categorization.fixed_k = Some(3);
    let report = Analysis::new(analysis_config).run(&dataset).unwrap();
    let cat = &report.categorization;
    assert_eq!(cat.num_groups(), 3);
    // The discovered fractions track the generating mix (±10%).
    assert!((cat.groups()[0].population_fraction - 0.2).abs() < 0.1);
    assert!((cat.groups()[1].population_fraction - 0.4).abs() < 0.1);
    assert!((cat.groups()[2].population_fraction - 0.4).abs() < 0.1);
}

#[test]
fn larger_fleet_improves_nothing_structurally() {
    // Doubling the good population must not change the categorization of
    // the same failed drives' structure (fractions, types).
    let small =
        FleetSimulator::new(FleetConfig::test_scale().with_good_drives(100).with_seed(410)).run();
    let large =
        FleetSimulator::new(FleetConfig::test_scale().with_good_drives(300).with_seed(410)).run();
    let rs = Analysis::new(config_without_svc()).run(&small).unwrap();
    let rl = Analysis::new(config_without_svc()).run(&large).unwrap();
    assert_eq!(rs.categorization.num_groups(), rl.categorization.num_groups());
    for (a, b) in rs.categorization.groups().iter().zip(rl.categorization.groups()) {
        assert_eq!(a.failure_type, b.failure_type);
    }
}
