//! Integration tests of the observability layer against the real pipeline:
//! span nesting over a full analysis run, metric values after a known
//! pipeline + monitoring run, and the guarantee that instrumentation never
//! changes computed results.
//!
//! The tracing subscriber and the global metrics registry are
//! process-wide, so every test takes `OBS_LOCK` before touching them.

use dds::prelude::*;
use dds_obs::subscribers::{CapturingSubscriber, JsonLinesSubscriber, NullSubscriber, TraceRecord};
use dds_obs::trace::{self, Level};
use dds_obs::{json, metrics};
use std::io::{self, Write};
use std::sync::{Arc, Mutex, MutexGuard};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    // A panicking test must not starve the others of the lock.
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn run_analysis(seed: u64) -> (Dataset, dds_core::AnalysisReport) {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(seed)).run();
    let report = Analysis::new(AnalysisConfig::default()).run(&dataset).unwrap();
    (dataset, report)
}

#[test]
fn pipeline_spans_nest_under_pipeline_run() {
    let _guard = obs_lock();
    let capture = Arc::new(CapturingSubscriber::new(Level::Trace));
    trace::install(capture.clone());
    let _ = run_analysis(91_001);
    trace::reset();

    let records = capture.records();
    let run_id = records
        .iter()
        .find_map(|r| match r {
            TraceRecord::SpanStart { id, name: "pipeline.run", parent, .. } => {
                assert_eq!(*parent, None, "pipeline.run must be a root span");
                Some(*id)
            }
            _ => None,
        })
        .expect("pipeline.run span recorded");

    // Every pipeline stage appears exactly once, as a child of pipeline.run.
    for stage in [
        "pipeline.profile_durations",
        "pipeline.features",
        "pipeline.boxplots",
        "pipeline.categorize",
        "pipeline.columnar",
        "pipeline.degradation",
        "pipeline.influence_zscore",
        "pipeline.predict",
    ] {
        let starts: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::SpanStart { name, parent, .. } if *name == stage => Some(*parent),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![Some(run_id)], "{stage} nested under pipeline.run");
        let ends = records
            .iter()
            .filter(|r| matches!(r, TraceRecord::SpanEnd { name, .. } if *name == stage))
            .count();
        assert_eq!(ends, 1, "{stage} closed exactly once");
    }

    // Inner algorithm spans fire too, below Info.
    let names = capture.span_names();
    assert!(names.contains(&"kmeans.fit"), "spans: {names:?}");
    assert!(names.contains(&"columnar.build"), "spans: {names:?}");
    assert!(names.contains(&"zscore.sweep"), "spans: {names:?}");
    assert!(names.contains(&"regtree.fit_columns"), "spans: {names:?}");
}

#[test]
fn metrics_reflect_a_known_pipeline_and_monitoring_run() {
    let _guard = obs_lock();
    metrics::global().reset();

    let (training, report) = run_analysis(91_002);
    let bundle = ModelBundle::from_analysis(&training, &report);
    let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());
    let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(91_003)).run();
    let mut alerts = 0usize;
    for drive in live.drives() {
        alerts += monitor.replay(drive.id(), drive.records()).len();
    }
    assert!(alerts > 0, "a test-scale fleet must raise alerts");

    let snap = metrics::global().snapshot();
    assert_eq!(snap.counter_value("dds_pipeline_runs_total"), Some(1));
    assert!(snap.counter_value("dds_kmeans_fits_total").unwrap_or(0) >= 1);
    assert!(snap.counter_value("dds_regtree_fits_total").unwrap_or(0) >= 1);
    assert!(snap.counter_value("dds_regtree_predictions_total").unwrap_or(0) > 0);
    assert_eq!(
        snap.counter_value("dds_monitor_records_ingested_total"),
        Some(live.num_records() as u64)
    );
    assert_eq!(snap.counter_value("dds_monitor_alerts_total"), Some(alerts as u64));
    assert_eq!(snap.gauge_value("dds_monitor_drives_tracked"), Some(live.drives().len() as f64));

    // Each pipeline stage records exactly one duration observation.
    let categorize = snap.histogram("dds_pipeline_categorize_seconds").expect("stage histogram");
    assert_eq!(categorize.count, 1);
    assert!(categorize.sum >= 0.0);

    // Snapshots export as valid JSON and non-empty Prometheus text.
    dds_obs::json::validate(&snap.to_json()).expect("snapshot JSON is valid");
    assert!(snap.to_prometheus().contains("# TYPE dds_monitor_alerts_total counter"));
}

#[test]
fn json_lines_trace_covers_every_pipeline_stage() {
    let _guard = obs_lock();

    // Shared in-memory sink standing in for the CLI's --trace-json file.
    #[derive(Clone)]
    struct Sink(Arc<Mutex<Vec<u8>>>);
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    let sink = Sink(Arc::new(Mutex::new(Vec::new())));
    trace::install(Arc::new(JsonLinesSubscriber::new(Box::new(sink.clone()))));
    let _ = run_analysis(91_005);
    trace::reset();

    let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    assert!(!text.is_empty(), "trace output produced");
    for line in text.lines() {
        json::validate(line).unwrap_or_else(|e| panic!("invalid JSON line {line:?}: {e}"));
    }
    for stage in [
        "pipeline.run",
        "pipeline.profile_durations",
        "pipeline.features",
        "pipeline.boxplots",
        "pipeline.categorize",
        "pipeline.columnar",
        "pipeline.degradation",
        "pipeline.influence_zscore",
        "pipeline.predict",
    ] {
        let name = format!("\"name\": \"{stage}\"");
        assert!(
            text.lines().any(|l| l.contains("\"type\": \"span_end\"") && l.contains(&name)),
            "stage {stage} has a span_end line"
        );
    }
}

#[test]
fn sharded_instrumentation_is_inert() {
    let _guard = obs_lock();
    metrics::global().reset();

    // The flight recorder's per-record stage clocks only run when a
    // recorder is attached; either way the sharded path must emit the
    // exact same alerts as an uninstrumented run of the same batch.
    use dds_monitor::ShardedFleetMonitor;
    use dds_obs::journal::{FlightRecorder, DEFAULT_JOURNAL_CAPACITY};

    let (training, report) = run_analysis(91_006);
    let bundle = ModelBundle::from_analysis(&training, &report);
    let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(91_007)).run();
    let mut batch = Vec::new();
    for drive in live.drives() {
        batch.extend(drive.records().iter().map(|r| (drive.id(), r.clone())));
    }

    let mut plain = ShardedFleetMonitor::new(bundle.clone(), MonitorConfig::default(), 3);
    let baseline = plain.ingest_batch(&batch);
    assert!(!baseline.is_empty(), "a test-scale fleet must raise alerts");

    let recorder = Arc::new(FlightRecorder::new(DEFAULT_JOURNAL_CAPACITY));
    let mut wired = ShardedFleetMonitor::new(bundle, MonitorConfig::default(), 3)
        .with_flight_recorder(Arc::clone(&recorder));
    let traced = wired.ingest_batch(&batch);

    assert_eq!(baseline.len(), traced.len(), "recorder must not change the alert count");
    for (a, b) in baseline.iter().zip(&traced) {
        assert_eq!(a.drive, b.drive);
        assert_eq!(a.hour, b.hour);
        assert_eq!(a.severity, b.severity);
        assert_eq!(a.degradation.to_bits(), b.degradation.to_bits(), "bit-identical scores");
    }
    assert_eq!(plain.quality_stats(), wired.quality_stats(), "identical quality ledgers");

    // And the recorder saw exactly this one batch, fully attributed.
    assert_eq!(recorder.total(), 1);
    let span = &recorder.last(1)[0];
    assert_eq!(span.records, batch.len() as u64);
    assert_eq!(span.accepted + span.quarantined, batch.len() as u64);
    assert_eq!(span.alerts, traced.len() as u64);
}

#[test]
fn instrumentation_does_not_change_results() {
    let _guard = obs_lock();

    // Baseline: no subscriber installed (the zero-overhead default).
    trace::reset();
    let (_, quiet) = run_analysis(91_004);

    // Same analysis under a null subscriber and under full capture.
    for subscriber in [
        Arc::new(NullSubscriber) as Arc<dyn trace::Subscriber>,
        Arc::new(CapturingSubscriber::new(Level::Trace)),
    ] {
        trace::install(subscriber);
        let (_, traced) = run_analysis(91_004);
        trace::reset();

        assert_eq!(
            quiet.categorization.assignments(),
            traced.categorization.assignments(),
            "group assignments must be identical with tracing on"
        );
        for (a, b) in quiet.prediction.groups.iter().zip(&traced.prediction.groups) {
            assert_eq!(a.rmse.to_bits(), b.rmse.to_bits(), "bit-identical RMSE");
        }
        for (a, b) in quiet.degradation.iter().zip(&traced.degradation) {
            assert_eq!(a.windows, b.windows);
            assert_eq!(a.dominant_form, b.dominant_form);
        }
    }
}
