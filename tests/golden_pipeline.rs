//! Golden regression pins for the default-seed pipeline.
//!
//! The CLI's default seed (`0x2015_115C`) at test scale produces a known
//! partition, known degradation signatures and a known prediction-error
//! ordering. These tests pin those values so an accidental behavior change
//! anywhere in the simulate → categorize → fit → predict chain shows up as
//! a crisp diff rather than a silent drift — the reproduction's analogue
//! of the paper's 59.6% / 7.6% / 32.8% Table II population split.

use dds_core::{
    report, Analysis, AnalysisConfig, AnalysisReport, OnlineTrainer, TrainedModel, TrainingContext,
};
use dds_smartsim::{Dataset, FleetConfig, FleetSimulator};
use dds_stats::SignatureForm;

/// The CLI's default seed (`dds pipeline` with no `--seed`).
const GOLDEN_SEED: u64 = 0x2015_115C;

fn golden_run() -> (Dataset, AnalysisReport) {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(GOLDEN_SEED)).run();
    let analysis = Analysis::new(AnalysisConfig::default()).run(&dataset).expect("golden analysis");
    (dataset, analysis)
}

#[test]
fn group_shares_match_the_golden_partition() {
    let (_, analysis) = golden_run();
    let groups = analysis.categorization.groups();
    assert_eq!(groups.len(), 3);

    // 60 failed drives split 36 / 4 / 20 — the reproduction's shape of the
    // paper's dominant / rare / mid-size group structure.
    let sizes: Vec<usize> = groups.iter().map(|g| g.drive_ids.len()).collect();
    assert_eq!(sizes, vec![36, 4, 20]);
    let total: usize = sizes.iter().sum();
    for (group, &size) in groups.iter().zip(&sizes) {
        let expected = size as f64 / total as f64;
        assert!(
            (group.population_fraction - expected).abs() < 1e-12,
            "group {} fraction {} != {expected}",
            group.index,
            group.population_fraction
        );
    }
}

#[test]
fn signature_forms_and_rmse_ordering_are_pinned() {
    let (_, analysis) = golden_run();
    assert_eq!(analysis.degradation.len(), 3);

    // Dominant forms per paper-order group: the large fast-failing group
    // fits a quadratic, the slow small group a linear, the mid group a
    // cubic (the reproduction's Fig. 7/8 shape).
    let dominant: Vec<SignatureForm> =
        analysis.degradation.iter().map(|g| g.dominant_form).collect();
    assert_eq!(
        dominant,
        vec![SignatureForm::Quadratic, SignatureForm::Linear, SignatureForm::Cubic]
    );

    for group in &analysis.degradation {
        // The dominant form must also be the best mean-RMSE form — votes
        // and error agree on the signature.
        let best = group
            .mean_rmse_by_form
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite rmse"))
            .expect("non-empty rmse table");
        assert_eq!(
            best.0, group.dominant_form,
            "group {}: dominant form must minimize mean RMSE",
            group.group_index
        );
        for &(form, rmse) in &group.mean_rmse_by_form {
            assert!(
                rmse.is_finite() && rmse >= 0.0,
                "group {} {form}: rmse {rmse}",
                group.group_index
            );
        }
    }

    // Full pinned per-group orderings (best form first).
    let orderings: Vec<Vec<SignatureForm>> = analysis
        .degradation
        .iter()
        .map(|g| {
            let mut by_rmse = g.mean_rmse_by_form.clone();
            by_rmse.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite rmse"));
            by_rmse.into_iter().map(|(form, _)| form).collect()
        })
        .collect();
    use SignatureForm::{Cubic, Linear, Quadratic, QuadraticWithLinearTerm};
    assert_eq!(
        orderings,
        vec![
            vec![Quadratic, Cubic, Linear, QuadraticWithLinearTerm],
            vec![Linear, Quadratic, Cubic, QuadraticWithLinearTerm],
            vec![Cubic, Quadratic, QuadraticWithLinearTerm, Linear],
        ]
    );
}

#[test]
fn prediction_error_ordering_is_pinned() {
    let (_, analysis) = golden_run();
    let rmse: Vec<f64> = analysis.prediction.groups.iter().map(|g| g.rmse).collect();
    assert_eq!(rmse.len(), 3);
    // The slow linear group predicts best, the dominant fast group worst;
    // all three stay well under the paper-grade 0.06 ceiling at this scale.
    assert!(rmse[1] < rmse[2] && rmse[2] < rmse[0], "rmse ordering drifted: {rmse:?}");
    for (i, &r) in rmse.iter().enumerate() {
        assert!(r < 0.06, "group {i} rmse {r} breaches the golden ceiling");
    }
}

#[test]
fn golden_model_artifact_reproduces_the_pipeline_report() {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(GOLDEN_SEED)).run();
    let ctx =
        TrainingContext { seed: GOLDEN_SEED, scale: "test".to_string(), git_sha: String::new() };
    let (analysis, model) =
        Analysis::new(AnalysisConfig::default()).train(&dataset, &ctx).expect("golden training");

    // `train` runs the identical pipeline `run` does.
    assert_eq!(
        report::render_full_report(&analysis),
        report::render_full_report(&golden_run().1),
        "train() must not perturb the analysis report"
    );

    // Save → load reproduces the pinned Table III byte for byte.
    let reloaded = TrainedModel::from_bytes(&model.to_bytes().expect("encode")).expect("decode");
    assert_eq!(reloaded, model);
    assert_eq!(
        report::render_prediction_table(&reloaded.prediction_report()),
        report::render_prediction_table(&analysis.prediction),
        "the golden prediction table must survive the artifact round-trip"
    );
    assert_eq!(reloaded.meta.seed, GOLDEN_SEED);
}

#[test]
fn online_refit_of_the_golden_window_renders_the_pinned_report() {
    // Stream the golden epoch through the online trainer record by
    // record; a clean window must refit to the byte-identical report a
    // cold run produces — so every golden pin above also pins the
    // streaming refit path.
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(GOLDEN_SEED)).run();
    let ctx =
        TrainingContext { seed: GOLDEN_SEED, scale: "test".to_string(), git_sha: String::new() };
    let mut trainer = OnlineTrainer::new(AnalysisConfig::default());
    trainer.begin_epoch(&dataset);
    trainer.observe_batch(&dds_smartsim::stream::hour_ordered(&dataset));
    let outcome = trainer.refit(&ctx).expect("golden refit");
    assert!(outcome.quality.is_none(), "the clean golden window skips the quality gate");
    assert_eq!(
        report::render_full_report(&outcome.report),
        report::render_full_report(&golden_run().1),
        "a streamed refit of the golden window must render the pinned report"
    );
}

#[test]
fn default_seed_report_is_byte_identical_across_runs() {
    let (_, first) = golden_run();
    let (_, second) = golden_run();
    assert_eq!(
        report::render_full_report(&first),
        report::render_full_report(&second),
        "two default-seed runs must render byte-identical reports"
    );
}
