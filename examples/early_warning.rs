//! Early warning: use the trained per-group regression trees and the
//! inverse degradation signatures to estimate, for drives that really
//! failed, how much rescue time a monitoring system would have had at
//! different stages (§V-B's application of the signatures).
//!
//! ```text
//! cargo run --release --example early_warning
//! ```

use dds::prelude::*;
use dds_core::degradation::DegradationAnalyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(7_771)).run();
    let analysis = Analysis::new(AnalysisConfig::default()).run(&dataset)?;
    let analyzer = DegradationAnalyzer::default();

    println!("early-warning audit: predicted degradation at fixed lead times");
    println!("================================================================");
    println!(
        "{:<12} {:<28} {:>9} {:>9} {:>9} {:>13}",
        "drive", "group", "T-48h", "T-24h", "T-8h", "est. rescue"
    );

    for group in analysis.categorization.groups() {
        let predictor = &analysis.prediction.groups[group.index];
        // Audit up to three drives per group.
        for &id in group.drive_ids.iter().take(3) {
            let drive = dataset.drive(id).expect("group drive exists");
            let n = drive.records().len();
            let at = |hours_before: usize| -> f64 {
                let idx = n.saturating_sub(hours_before + 1);
                let record = dataset.normalize_record(&drive.records()[idx]);
                predictor.predict(&record)
            };
            // Invert the drive's own signature at its last predicted
            // degradation stage to estimate remaining rescue time.
            let degradation = analyzer.analyze_drive(&dataset, drive)?;
            let stage = at(8);
            let rescue = degradation
                .remaining_hours_at(stage.min(0.0))
                .map(|h| format!("{h:.0} h"))
                .unwrap_or_else(|| "n/a".to_string());
            println!(
                "{:<12} {:<28} {:>9.2} {:>9.2} {:>9.2} {:>13}",
                drive.id().to_string(),
                group.failure_type.to_string(),
                at(48),
                at(24),
                at(8),
                rescue
            );
        }
    }
    println!();
    println!("reading: +1.00 = healthy, -1.00 = failure imminent. Bad-sector and");
    println!("head failures drift negative days in advance; logical failures stay");
    println!("near-healthy until hours before the event — exactly the degradation-");
    println!("window asymmetry the signatures quantify.");
    Ok(())
}
