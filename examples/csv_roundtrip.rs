//! CSV round-trip: export a simulated fleet to the CSV schema real SMART
//! corpora can be adapted to, load it back, and run the analysis on the
//! loaded copy — the adaptation path for non-simulated data.
//!
//! ```text
//! cargo run --release --example csv_roundtrip [path.csv]
//! ```

use dds::prelude::*;
use dds_smartsim::io::{read_csv, write_csv};
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args().nth(1).unwrap_or_else(|| "/tmp/dds_fleet.csv".to_string());

    // Export.
    let fleet = FleetSimulator::new(FleetConfig::test_scale().with_seed(99)).run();
    write_csv(&fleet, BufWriter::new(File::create(&path)?))?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("wrote {} records ({bytes} bytes) to {path}", fleet.num_records());

    // Import and analyze the loaded copy.
    let loaded = read_csv(File::open(&path)?)?;
    assert_eq!(loaded.num_records(), fleet.num_records());
    let analysis = Analysis::new(AnalysisConfig::default()).run(&loaded)?;
    println!(
        "analysis of the loaded dataset found {} groups:",
        analysis.categorization.num_groups()
    );
    for group in analysis.categorization.groups() {
        println!(
            "  Group {}: {} ({:.1}%)",
            group.index + 1,
            group.failure_type,
            group.population_fraction * 100.0
        );
    }
    println!("adapt real SMART corpora by writing this same CSV layout — see");
    println!("`dds_smartsim::io` for the schema.");
    Ok(())
}
