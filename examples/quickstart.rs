//! Quickstart: simulate a small SMART fleet, run the paper's complete
//! analysis, and print the headline results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dds::prelude::*;
use dds_core::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate a datacenter fleet. `test_scale` keeps this example fast;
    //    use `FleetConfig::bench_scale()` for the paper's 433 failed drives.
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(42)).run();
    println!(
        "simulated {} drives / {} hourly SMART records ({} failed drives)",
        dataset.drives().len(),
        dataset.num_records(),
        dataset.failed_drives().count()
    );

    // 2. Run every stage of the paper in one call.
    let analysis = Analysis::new(AnalysisConfig::default()).run(&dataset)?;

    // 3. What failure types exist, and how common are they? (Table II)
    print!("{}", report::render_failure_categories(&analysis.categorization));

    // 4. How does each type degrade? (Eqs. 3/4/6)
    for group in &analysis.degradation {
        println!(
            "Group {} degrades as {} over a {:.0}-hour window",
            group.group_index + 1,
            group.dominant_form.formula(),
            group.window_stats.1
        );
    }

    // 5. How accurately can degradation be predicted? (Table III)
    print!("{}", report::render_prediction_table(&analysis.prediction));
    Ok(())
}
