//! Fleet triage: the §V-A workflow — categorize a fleet's failures,
//! find the dominant failure type, and derive the operational actions the
//! paper recommends (thermal management for logical failures, scrubbing and
//! early replacement for sector/head failures, extra backups for the age
//! cohorts that fail).
//!
//! ```text
//! cargo run --release --example fleet_triage
//! ```

use dds::prelude::*;
use dds_core::zscore::{temporal_z_scores, ZScoreConfig};
use dds_core::FailureType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(2024)).run();
    let analysis = Analysis::new(AnalysisConfig::default()).run(&dataset)?;
    let categorization = &analysis.categorization;

    println!("fleet triage report");
    println!("===================");
    println!(
        "{} drives monitored, {} replaced ({:.2}% — paper observed 1.85%)\n",
        dataset.drives().len(),
        dataset.failed_drives().count(),
        100.0 * dataset.failed_drives().count() as f64 / dataset.drives().len() as f64
    );

    // Break failures down by discovered type and attach the action plan.
    for group in categorization.groups() {
        println!(
            "Group {} — {} ({} drives, {:.1}% of failures)",
            group.index + 1,
            group.failure_type,
            group.size(),
            group.population_fraction * 100.0
        );
        let action = match group.failure_type {
            FailureType::Logical => {
                "deploy thermal controls (drive caddies, rack temperature knobs, \
                 thermal-aware scheduling); these drives run hot and fail with \
                 little SMART warning"
            }
            FailureType::BadSector => {
                "increase background-scrub frequency and schedule replacement as \
                 soon as uncorrectable errors start accumulating; degradation is \
                 slow and monotone, leaving ~2 weeks for data rescue"
            }
            FailureType::HeadWear => {
                "budget replacements for the oldest cohort and watch reallocated \
                 sectors; the final reallocation storm leaves under a day"
            }
            _ => "inspect manually; no rule matched",
        };
        println!("  action: {action}\n");
    }

    // The paper's root-cause check: which attribute singles out the
    // dominant group? (§V-A: temperature for logical failures.)
    let tc = temporal_z_scores(
        &dataset,
        &analysis.failure_records,
        categorization,
        Attribute::TemperatureCelsius,
        &ZScoreConfig::default(),
    )?;
    if let Some(group) = tc.most_separated_group() {
        let z = tc.mean_z(group).unwrap_or(0.0);
        println!(
            "temperature diagnosis: Group {} runs hottest (mean TC z-score {z:+.1});",
            group + 1
        );
        println!(
            "cooling that cohort attacks {:.1}% of all failures at the source.",
            categorization.groups()[group].population_fraction * 100.0
        );
    }
    Ok(())
}
