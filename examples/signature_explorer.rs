//! Signature explorer: deep-dive one failed drive — its distance-to-failure
//! curve, extracted degradation window, every candidate signature model
//! with its RMSE, and the remaining-time estimates the winning signature
//! implies (the §IV-C tool, applied to a single drive).
//!
//! ```text
//! cargo run --release --example signature_explorer [drive-index]
//! ```

use dds::prelude::*;
use dds_core::degradation::DegradationAnalyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pick: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0);
    let dataset = FleetSimulator::new(FleetConfig::test_scale().with_seed(31_415)).run();
    let drive = dataset
        .failed_drives()
        .nth(pick)
        .ok_or("drive index out of range — the test fleet has 60 failed drives")?;

    println!(
        "{} — {} ({} hourly records)",
        drive.id(),
        drive.label().failure_mode().map(|m| m.type_name()).unwrap_or("good"),
        drive.records().len()
    );

    let analysis = DegradationAnalyzer::default().analyze_drive(&dataset, drive)?;

    // Distance curve, down-sampled.
    println!("\ndistance to failure record (Euclidean over normalized attributes):");
    let n = analysis.distances.len();
    let max = analysis.distances.iter().copied().fold(0.0, f64::max).max(1e-12);
    for i in (0..n).step_by((n / 16).max(1)) {
        let d = analysis.distances[i];
        println!("  t-{:>3} h | {d:>7.3} {}", n - 1 - i, "#".repeat((d / max * 40.0) as usize));
    }

    println!("\nextracted degradation window: {} hours", analysis.window_hours);
    println!("candidate signature models:");
    for &(form, rmse) in &analysis.model_rmse {
        let marker = if form == analysis.best_model.form() { "  <= best" } else { "" };
        println!("  {:<30} RMSE {rmse:.4}{marker}", form.formula());
    }
    println!("free polynomial fits (Fig. 8 style):");
    for fit in &analysis.poly_fits {
        println!("  order {}: R^2 = {:.4}, RMSE = {:.4}", fit.order, fit.r_squared, fit.rmse);
    }

    println!("\nremaining-time table from the winning signature:");
    for stage in [-0.25, -0.5, -0.75, -0.9] {
        if let Some(hours) = analysis.remaining_hours_at(stage) {
            println!("  at degradation {stage:+.2}: ~{hours:.1} h before failure");
        }
    }
    Ok(())
}
