//! Live monitoring: train the paper's models on one fleet, deploy them as
//! a streaming monitor (the §VI middleware), and replay a *different*
//! fleet's telemetry hour by hour, printing the alert log.
//!
//! ```text
//! cargo run --release --example live_monitor
//! ```

use dds::prelude::*;
use dds_monitor::Severity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on last quarter's fleet...
    let training = FleetSimulator::new(FleetConfig::test_scale().with_seed(111)).run();
    let analysis = Analysis::new(AnalysisConfig::default()).run(&training)?;
    let bundle = ModelBundle::from_analysis(&training, &analysis);
    println!(
        "trained bundle: {} group models, scaler over {} attributes",
        bundle.groups().len(),
        bundle.scaler().num_columns()
    );

    // ...deploy against this quarter's fleet.
    let live = FleetSimulator::new(FleetConfig::test_scale().with_seed(222)).run();
    let mut monitor = FleetMonitor::new(bundle, MonitorConfig::default());

    let mut log = Vec::new();
    for drive in live.drives() {
        for record in drive.records() {
            for alert in monitor.ingest(drive.id(), record) {
                log.push(alert);
            }
        }
    }
    log.sort_by_key(|a| a.hour);

    println!("\nalert log ({} alerts, showing the first 25):", log.len());
    for alert in log.iter().take(25) {
        println!("  {alert}");
    }

    let critical = log.iter().filter(|a| a.severity == Severity::Critical).count();
    let failed = live.failed_drives().count();
    println!("\n{critical} critical alerts across {failed} drives that actually failed;");
    println!("{} drives under monitoring state.", monitor.drives_tracked());
    Ok(())
}
