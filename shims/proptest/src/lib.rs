//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the proptest 1.x API its tests use: the
//! [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`], range and string strategies, and the
//! `prop::collection::vec` / `prop::sample::select` constructors.
//!
//! Differences from upstream: inputs are generated from a fixed
//! per-test deterministic seed (derived from the test name), and there
//! is no shrinking — a failing case reports the assertion message and
//! the case number, which is reproducible because generation is
//! deterministic.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generation strategies.
pub mod strategy {
    use super::*;

    /// A source of generated values for property tests.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// String patterns act as strategies, as in upstream proptest. The
    /// shim understands the `.{lo,hi}` form (arbitrary printable-ish
    /// unicode of bounded length); any other pattern falls back to a
    /// random string of length 0..=64.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let (lo, hi) = parse_dot_repetition(self).unwrap_or((0, 64));
            let len = rng.random_range(lo..=hi.max(lo));
            (0..len)
                .map(|_| {
                    // Mix ASCII (mostly) with some multi-byte scalars to
                    // exercise UTF-8 handling.
                    if rng.random_bool(0.9) {
                        char::from(rng.random_range(0x20u32..0x7F) as u8)
                    } else {
                        char::from_u32(rng.random_range(0xA0u32..0x2FFF)).unwrap_or('\u{FFFD}')
                    }
                })
                .collect()
        }
    }

    /// Parses `.{lo,hi}` patterns; returns `None` for anything else.
    fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    /// Generates `Vec`s from an element strategy and a size specifier.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.min..=self.max.max(self.min));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Sizes accepted by [`vec()`]: an exact length or a range of lengths.
    pub trait IntoSizeRange {
        /// Converts to inclusive `(min, max)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1).max(self.start))
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// Picks uniformly from a fixed set of options.
    pub struct SelectStrategy<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for SelectStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }

    /// Builds a [`SelectStrategy`].
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> SelectStrategy<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        SelectStrategy { options }
    }
}

/// The case runner.
pub mod test_runner {
    use super::*;

    /// Outcome of a single generated case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the property is violated.
        Fail(String),
        /// The inputs were rejected by `prop_assume!`; try another case.
        Reject,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// Creates a rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// FNV-1a, used to derive a deterministic per-test seed from its name.
    fn fnv1a(data: &str) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in data.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Runs `case` until `config.cases` successes, panicking on the first
    /// failure. Deterministic: case `i` of test `name` always sees the
    /// same inputs.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or the reject budget is exhausted.
    pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let seed = fnv1a(name);
        let mut successes = 0u32;
        let mut rejects = 0u32;
        let mut index = 0u64;
        while successes < config.cases {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(index));
            match case(&mut rng) {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "{name}: too many prop_assume! rejections ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "{name}: property failed at case {index} \
                         (deterministic; rerun reproduces it): {message}"
                    );
                }
            }
            index += 1;
        }
    }
}

/// The strategy constructors namespace (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }

    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Discards the current case when its inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Declares property tests: each `fn` becomes a `#[test]` that runs the
/// body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -5..5, z in -1.0..1.0f64) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&z));
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0.0..1.0f64, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn select_picks_members(s in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&s));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn string_pattern_bounds_length(s in ".{0,40}") {
            prop_assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = crate::strategy::vec(0.0..1.0f64, 3usize);
        let a = strat.generate(&mut StdRng::seed_from_u64(5));
        let b = strat.generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_number() {
        crate::test_runner::run(
            crate::test_runner::ProptestConfig::with_cases(4),
            "always_fails",
            |_| Err(crate::test_runner::TestCaseError::fail("boom")),
        );
    }
}
