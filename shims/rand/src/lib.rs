//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small subset of the rand 0.10 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], the [`Rng`] core
//! trait, the [`RngExt`] extension methods (`random`, `random_range`,
//! `random_bool`) and [`seq::SliceRandom`].
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! different generator than upstream's ChaCha12, but every consumer in
//! this workspace treats the generator as an opaque deterministic stream,
//! so only reproducibility (same seed ⇒ same stream) matters, not the
//! exact bit sequence.

#![deny(missing_docs)]
#![deny(unsafe_code)]

/// A source of random bits.
///
/// Object-safe core; the generic convenience methods live on [`RngExt`],
/// which is blanket-implemented for every `Rng`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng`'s raw bit stream.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[allow(clippy::cast_lossless)]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` without modulo bias (widening
/// multiply; the tiny bias of the high-bits method is < 2⁻⁶⁴ per draw).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value of type `T` uniformly over its standard domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. The same seed always
    /// produces the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: the standard seed-expansion generator (Steele et al.),
/// used to derive the xoshiro state from a 64-bit seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna) seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_with_reasonable_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.random_range(3..10);
            assert!((3..10).contains(&x));
            let y: u32 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let z = rng.random_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&z));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1_300).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never is identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(17);
        let v = [1, 2, 3];
        assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_dyn_and_mut_refs() {
        let mut rng = StdRng::seed_from_u64(19);
        fn takes_dyn(rng: &mut dyn Rng) -> u64 {
            rng.next_u64()
        }
        let _ = takes_dyn(&mut rng);
        let r = &mut rng;
        let _: f64 = r.random();
    }
}
