//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the criterion 0.5 API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`],
//! [`BatchSize`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Behavior follows the real harness's two modes:
//!
//! - **`cargo bench`** (cargo passes `--bench`): each benchmark is warmed
//!   up and timed over enough iterations to fill a small measurement
//!   window; mean wall time per iteration (and derived throughput) is
//!   printed to stdout.
//! - **`cargo test`** (no `--bench` argument): each benchmark body runs
//!   exactly once as a smoke test, so test runs stay fast.

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group, used to derive
/// elements/sec or bytes/sec from the measured time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// How much setup output `iter_batched` keeps in flight; the shim times
/// identically for every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    /// Reads the process arguments the way cargo invokes bench targets:
    /// `--bench` selects measurement mode, anything else (e.g. a bare
    /// `cargo test` run) selects single-pass smoke mode.
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: 10 }
    }

    /// Registers a stand-alone benchmark (a group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("run", f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing throughput and sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples (the shim uses it to bound
    /// total measurement time).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            measure: self.criterion.measure,
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        if bencher.iterations == 0 {
            println!("bench {label}: no iterations recorded");
        } else if self.criterion.measure {
            let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
            let rate = match self.throughput {
                Some(Throughput::Elements(n)) => {
                    format!(", {:.0} elem/s", n as f64 / per_iter)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(", {:.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
                }
                None => String::new(),
            };
            println!(
                "bench {label}: {:.3} ms/iter ({} iters{rate})",
                per_iter * 1e3,
                bencher.iterations
            );
        } else {
            println!("bench {label}: smoke-tested (pass --bench to measure)");
        }
        self
    }

    /// Ends the group (parity with the real API; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    measure: bool,
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

/// Measurement window per benchmark in measurement mode.
const TARGET_WINDOW: Duration = Duration::from_millis(300);

impl Bencher {
    /// Runs `routine` repeatedly and records total wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            std::hint::black_box(routine());
            self.iterations += 1;
            return;
        }
        // Warm-up (also primes caches/allocator).
        std::hint::black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < TARGET_WINDOW && iters < self.samples as u64 * 1_000 {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.elapsed += start.elapsed();
        self.iterations += iters;
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !self.measure {
            let input = setup();
            std::hint::black_box(routine(input));
            self.iterations += 1;
            return;
        }
        let deadline = Instant::now() + TARGET_WINDOW;
        let mut iters = 0u64;
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            iters += 1;
            if Instant::now() >= deadline || iters >= self.samples as u64 * 1_000 {
                break;
            }
        }
        self.iterations += iters;
    }
}

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a single callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { measure: false };
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_runs_many_and_records_time() {
        let mut c = Criterion { measure: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut runs = 0u64;
        group.throughput(Throughput::Elements(1));
        group.bench_function("fast", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 1, "measurement mode must iterate (ran {runs})");
    }

    #[test]
    fn iter_batched_feeds_fresh_inputs() {
        let mut c = Criterion { measure: false };
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}
